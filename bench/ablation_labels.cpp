// Ablation (§4.3): recursive label swapping vs the label-stacking strawman.
//
// The paper's design claim: with swapping, "each switch along a flow's path
// only sees at most one label" and per-packet header overhead stays one
// label regardless of hierarchy depth, while stacking carries up to `level`
// labels ("an increase in the packet header space and network bandwidth
// consumption as SoftMoW levels increases").
//
// Method: identical 3-level scenarios (leaves -> level-2 parents -> root)
// built in each label mode; the root sets up cross-region bearer paths; the
// same uplink packets are walked through the physical data plane and the
// label depth is audited at every switch entry.
#include "bench/common.h"

namespace softmow::bench {
namespace {

struct ModeResult {
  SampleSet max_depth;          ///< per packet: deepest label stack seen
  SampleSet header_bytes;       ///< per packet-hop: label bytes on the wire
  std::size_t rules = 0;        ///< total switch state
  std::size_t delivered = 0;
  std::size_t attempted = 0;
};

ModeResult run_mode(reca::LabelMode mode) {
  topo::ScenarioParams params = topo::small_scenario_params(current_bench_options().seed * 5);
  params.regions = 4;
  params.with_mid_level = true;  // 3 levels: the depth where stacking hurts
  params.label_mode = mode;
  auto scenario = build_scenario_timed(std::move(params));
  auto& mp = *scenario->mgmt;

  ModeResult result;
  std::uint64_t ue_seq = 1;
  for (BsGroupId group : scenario->trace.groups) {
    if (result.attempted >= 40) break;
    reca::Controller* leaf = mp.leaf_of_group(group);
    auto& mobility = scenario->apps->mobility(*leaf);
    BsId bs = scenario->net.bs_group(group)->members.front();
    UeId ue{ue_seq++};
    if (!mobility.ue_attach(ue, bs).ok()) continue;

    apps::BearerRequest request;
    request.ue = ue;
    request.bs = bs;
    request.dst_prefix = PrefixId{ue_seq % 50};
    request.objective = Metric::kLatency;
    // Demand the *globally* optimal latency so requests escalate as far as
    // the root whenever the local/mid regions cannot match it — root-level
    // paths are where stacking reaches its full depth.
    leaf->abstraction().refresh();
    GBsId root_gbs = leaf->abstraction().exposed_gbs_id(mgmt::gbs_id_for_group(group));
    for (reca::Controller* mid : mp.mids()) {
      if (mid->child_by_gswitch(leaf->abstraction().gswitch_id()) == leaf) {
        mid->abstraction().refresh();
        root_gbs = mid->abstraction().exposed_gbs_id(root_gbs);
        break;
      }
    }
    for (reca::Controller* c : {&mp.root()}) {
      if (const auto* view = c->nib().gbs(root_gbs)) {
        nos::RoutingRequest probe;
        probe.source = Endpoint{view->attached_switch, view->attached_port};
        probe.dst_prefix = request.dst_prefix;
        probe.objective = Metric::kLatency;
        if (auto best = c->compute_route(probe); best.ok())
          request.qos.max_latency_us = best->total_latency_us() * 1.02;
      }
    }
    auto bearer = mobility.request_bearer(request);
    if (!bearer.ok()) continue;
    ++result.attempted;

    Packet pkt;
    pkt.ue = ue;
    pkt.dst_prefix = request.dst_prefix;
    auto report = scenario->net.inject_uplink(pkt, bs);
    if (report.outcome != dataplane::DeliveryReport::Outcome::kExternal) continue;
    ++result.delivered;
    result.max_depth.add(static_cast<double>(report.packet.max_depth_seen()));
    for (const Packet::HopRecord& hop : report.packet.trace) {
      result.header_bytes.add(static_cast<double>(hop.label_depth_on_entry) *
                              kLabelHeaderBytes);
    }
  }
  result.rules = scenario->net.total_rules();
  maybe_verify(*scenario,
               mode == reca::LabelMode::kSwapping ? "verify(swapping)" : "verify(stacking)");
  return result;
}

void run() {
  print_header("Ablation — recursive label swapping vs label stacking (§4.3)",
               "swapping: <=1 label on any physical link at any depth; "
               "stacking: up to `level` labels");

  ModeResult swapping = run_mode(reca::LabelMode::kSwapping);
  ModeResult stacking = run_mode(reca::LabelMode::kStacking);

  TextTable table({"mode", "paths", "delivered", "max label depth", "mean hdr bytes/hop",
                   "p95 hdr bytes/hop", "switch rules"});
  auto add = [&](const char* name, const ModeResult& r) {
    table.add_row({name, std::to_string(r.attempted), std::to_string(r.delivered),
                   TextTable::num(r.max_depth.max(), 0),
                   TextTable::num(r.header_bytes.mean(), 2),
                   TextTable::num(r.header_bytes.percentile(95), 1),
                   std::to_string(r.rules)});
  };
  add("swapping (SoftMoW)", swapping);
  add("stacking (strawman)", stacking);
  table.print();

  std::printf("\nmeasured: swapping max depth %.0f (invariant: 1) vs stacking %.0f "
              "(hierarchy depth 3)\n",
              swapping.max_depth.max(), stacking.max_depth.max());
  std::printf("measured: stacking inflates per-hop header bytes by %.1fx\n",
              stacking.header_bytes.mean() / std::max(swapping.header_bytes.mean(), 1e-9));
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
