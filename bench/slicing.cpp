// Slicing — multi-tenant rule compression and isolation.
//
// N virtual operators share the physical WAN, each with its own subscriber
// population, bearer mix and budget share. Three questions, three sections:
//
//  1. Rule compression: SoftCell-style policy tags (slice x clause x egress
//     aggregate share one transit rule) against the paper's §4.3 per-path
//     label swapping, swept over 1/2/4/8 slices. Tags must win at >= 4
//     slices — transit state scales with aggregates, not bearers.
//  2. Per-slice bearer-setup latency under skewed load (slice 0 offers ~4x
//     the bearers of the others), modeled through the §7.3 queueing stations
//     of the controllers that handled each setup — never wall clock, so the
//     numbers are byte-identical for any --threads.
//  3. Isolation: the static verifier (slice-annotated) and the rule/probe
//     audit must report zero cross-tenant violations; a forged rogue
//     classifier must be flagged with its exact (switch, cookie, slice)
//     triple and the self-healing plane must remove it again.
//
//   $ ./slicing --encap tags --slices 4 --threads 4
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "mgmt/audit.h"

namespace softmow::bench {
namespace {

using slice::EncapMode;
using slice::SliceManager;
using slice::SliceSpec;

/// Canonical tenant templates, cycled when more slices are requested.
std::vector<SliceSpec> tenant_templates() {
  std::vector<SliceSpec> specs(4);
  specs[0].name = "broadband";
  specs[0].tier = apps::SubscriberClass::kPremium;
  specs[0].bearer_mix = {apps::ApplicationClass::kVideo, apps::ApplicationClass::kDefault};
  specs[1].name = "iot";
  specs[1].tier = apps::SubscriberClass::kBasic;
  specs[1].bearer_mix = {apps::ApplicationClass::kDefault};
  specs[2].name = "voice";
  specs[2].tier = apps::SubscriberClass::kBasic;
  specs[2].bearer_mix = {apps::ApplicationClass::kVoip};
  specs[3].name = "enterprise";
  specs[3].tier = apps::SubscriberClass::kPremium;
  specs[3].bearer_mix = {apps::ApplicationClass::kBulk, apps::ApplicationClass::kVideo};
  return specs;
}

struct RuleCount {
  std::size_t total = 0;
  std::size_t max_per_switch = 0;
};

RuleCount count_rules(dataplane::PhysicalNetwork& net) {
  RuleCount rc;
  for (SwitchId sw_id : net.all_switches()) {
    const dataplane::Switch* sw = net.sw(sw_id);
    if (sw == nullptr) continue;
    std::size_t n = sw->table().rules().size();
    rc.total += n;
    if (n > rc.max_per_switch) rc.max_per_switch = n;
  }
  return rc;
}

/// Registers `n` tenants, provisions their subscribers and opens each
/// slice's bearers (round-robin over destinations). `skew_first` gives
/// slice 0 four times the bearer load of the others.
std::unique_ptr<SliceManager> build_tenants(topo::Scenario& scenario, EncapMode mode,
                                            std::size_t n, std::size_t subs_per_slice,
                                            std::size_t bearers_per_slice,
                                            bool skew_first) {
  SliceManager::Options mgr_opts;
  mgr_opts.encap = mode;
  mgr_opts.seed = current_bench_options().seed;
  auto mgr = std::make_unique<SliceManager>(scenario, mgr_opts);

  std::vector<SliceSpec> templates = tenant_templates();
  for (std::size_t i = 0; i < n; ++i) {
    SliceSpec spec = templates[i % templates.size()];
    if (i >= templates.size()) {
      spec.name += '-';
      spec.name += std::to_string(i / templates.size());
    }
    spec.share = 1.0 / static_cast<double>(n);
    auto id = mgr->add_slice(spec);
    if (!id.ok()) {
      std::fprintf(stderr, "add_slice(%s): %s\n", spec.name.c_str(),
                   id.error().message.c_str());
      std::exit(1);
    }
    (void)mgr->provision(*id, subs_per_slice);
  }

  for (SliceId id : mgr->slices()) {
    std::size_t want = bearers_per_slice;
    if (skew_first && id.value == 0) want *= 4;
    const std::vector<UeId>& subs = mgr->subscribers(id);
    if (subs.empty()) continue;
    for (std::size_t b = 0; b < want; ++b) {
      UeId ue = subs[b % subs.size()];
      PrefixId dst{(b * 7 + id.value) % 50 + 1};
      (void)mgr->open_bearer(id, ue, dst);
    }
  }
  return mgr;
}

std::string fmt_pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", x);
  return buf;
}

/// Section 1 — transit-state compression, tags vs labels at 1/2/4/8 slices.
void run_compression_sweep(std::size_t subs_per_slice, std::size_t bearers_per_slice) {
  std::printf("\n--- rule-table compression: policy tags vs §4.3 labels ---\n");
  TextTable table({"slices", "bearers", "labels rules", "tags rules", "saved",
                   "labels max/sw", "tags max/sw"});
  obs::MetricsRegistry& reg = obs::default_registry();

  for (std::size_t n : {1, 2, 4, 8}) {
    std::size_t baseline = 0;
    std::uint64_t bearers = 0;
    RuleCount by_mode[2];
    for (EncapMode mode : {EncapMode::kLabels, EncapMode::kTags}) {
      auto scenario = build_scenario_timed(paper_scale_params());
      baseline = count_rules(scenario->net).total;
      auto mgr = build_tenants(*scenario, mode, n, subs_per_slice,
                               bearers_per_slice, /*skew_first=*/false);
      RuleCount rc = count_rules(scenario->net);
      rc.total -= baseline;  // bootstrap rules are encap-independent
      by_mode[mode == EncapMode::kTags ? 1 : 0] = rc;
      if (mode == EncapMode::kTags) {
        bearers = 0;
        for (SliceId id : mgr->slices()) bearers += mgr->stats(id).bearers_admitted;
      }
      reg.gauge("slicing_rules_installed",
                {{"encap", slice::to_string(mode)}, {"slices", std::to_string(n)}})
          ->set(static_cast<double>(rc.total));
    }
    const RuleCount& labels = by_mode[0];
    const RuleCount& tags = by_mode[1];
    double saved = labels.total == 0
                       ? 0.0
                       : 100.0 * (1.0 - static_cast<double>(tags.total) /
                                            static_cast<double>(labels.total));
    table.add_row({std::to_string(n), std::to_string(bearers),
                   std::to_string(labels.total), std::to_string(tags.total),
                   fmt_pct(saved), std::to_string(labels.max_per_switch),
                   std::to_string(tags.max_per_switch)});
  }
  table.print();
  std::printf("(rule counts exclude the encap-independent bootstrap state; "
              "'saved' is the tag scheme's reduction in bearer-driven rules)\n");
}

/// Section 2 — per-slice setup latency under skewed load, modeled through
/// per-level queueing stations (§7.3): each admitted bearer queues at the
/// station of the level that handled it plus a 1 ms control-channel RTT per
/// level it climbed.
void run_skewed_load(topo::Scenario& scenario, SliceManager& mgr) {
  std::printf("\n--- per-slice bearer-setup latency under skewed load ---\n");
  std::map<int, sim::QueueingStation> stations;
  auto station_for = [&](int level) -> sim::QueueingStation& {
    auto it = stations.find(level);
    if (it == stations.end()) {
      std::string name = "slice-setup-L";
      name += std::to_string(level);
      it = stations.emplace(level, sim::QueueingStation(sim::Duration::micros(80),
                                                        name, level))
               .first;
    }
    return it->second;
  };

  TextTable table({"slice", "subs", "admitted", "rejected", "mean ms", "p95 ms",
                   "by-level"});
  obs::MetricsRegistry& reg = obs::default_registry();
  sim::TimePoint arrival = sim::TimePoint::zero();
  for (SliceId id : mgr.slices()) {
    slice::SliceStats stats = mgr.stats(id);
    SampleSet latency;
    // Replay this slice's admitted bearers through the stations in the
    // deterministic order the levels recorded them.
    for (const auto& [level, count] : stats.bearers_by_level) {
      for (std::uint64_t i = 0; i < count; ++i) {
        arrival = arrival + sim::Duration::micros(200);
        sim::TimePoint done = station_for(level).submit(arrival);
        sim::Duration climb = sim::Duration::millis(2.0 * (level - 1));
        latency.add((done - arrival + climb).to_millis());
      }
    }
    std::string by_level;
    for (const auto& [level, count] : stats.bearers_by_level) {
      if (!by_level.empty()) by_level += ' ';
      by_level += 'L';
      by_level += std::to_string(level);
      by_level += ':';
      by_level += std::to_string(count);
    }
    table.add_row({stats.name, std::to_string(stats.subscribers),
                   std::to_string(stats.bearers_admitted),
                   std::to_string(stats.bearers_rejected),
                   latency.empty() ? "-" : TextTable::num(latency.mean(), 3),
                   latency.empty() ? "-" : TextTable::num(latency.percentile(95), 3),
                   by_level});
    reg.gauge("slicing_setup_latency_ms_mean", {{"slice", stats.name}})
        ->set(latency.empty() ? 0.0 : latency.mean());
  }
  table.print();
  std::printf("(latency is modeled: queueing at the handling level's station "
              "plus a 1 ms control RTT per level climbed — slice 0 offers 4x "
              "the load but pays only its own queue)\n");
  (void)scenario;
}

void print_slice_audit(const mgmt::SliceAuditReport& report, const char* when) {
  std::printf("%s: %zu rules scanned, %zu probes, %zu tagged hops, %zu violations\n",
              when, report.rules_scanned, report.probes_sent,
              report.tagged_hops_checked, report.findings.size());
  for (const mgmt::SliceAuditFinding& f : report.findings) {
    std::printf("  VIOLATION sw=%s cookie=0x%llx expected slice %llu got %llu\n",
                f.sw.str().c_str(), (unsigned long long)f.cookie,
                (unsigned long long)f.expected.value,
                (unsigned long long)f.found.value);
  }
}

/// Section 3 — isolation invariants, then a forged rogue classifier through
/// the self-healing plane (the sharded engine exercises --threads).
void run_isolation(topo::Scenario& scenario, SliceManager& mgr) {
  const BenchOptions& opts = current_bench_options();
  std::printf("\n--- tenant isolation: verifier + rule/probe audit ---\n");
  mgr.install_annotator();
  verify::VerifyReport report = scenario.mgmt->verify_data_plane();
  std::printf("static verifier: %zu findings, %zu isolation violations\n",
              report.findings.size(), report.isolation_violations());

  mgmt::SliceAuditReport audit =
      mgmt::audit_slice_isolation(scenario.net, mgr.ue_slices());
  print_slice_audit(audit, "baseline audit");

  std::size_t baseline_violations = report.isolation_violations() + audit.findings.size();

  // Forge the rogue rule the fault plan would install and prove both
  // detectors pin it to the exact (switch, cookie, slice) triple.
  faults::FaultScenario plan =
      faults::make_fault_plan("rogue-rule", scenario, opts.fault_seed);
  std::size_t detected = 0;
  if (plan.events.empty()) {
    std::printf("rogue-rule plan empty (no tagged classifier — labels mode); "
                "skipping seeded-fault detection\n");
  } else {
    const faults::FaultEvent& ev = plan.events.front();
    dataplane::Switch* sw = scenario.net.sw(ev.sw);
    (void)sw->table().install(ev.rogue);
    mgmt::SliceAuditReport dirty =
        mgmt::audit_slice_isolation(scenario.net, mgr.ue_slices());
    print_slice_audit(dirty, "audit with rogue classifier");
    for (const mgmt::SliceAuditFinding& f : dirty.findings) {
      if (f.sw == ev.sw && f.cookie == ev.rogue.cookie) ++detected;
    }
    std::printf("rogue rule pinned by audit: %s\n", detected > 0 ? "yes" : "NO");
    (void)sw->table().remove_by_cookie(ev.rogue.cookie);

    // Now let the injector install it at an engine barrier and the recovery
    // coordinator detect + remove it through the southbound channel.
    ShardedRun sharded(scenario);
    faults::RecoveryCoordinator coord(scenario, &sharded.engine());
    coord.harden();
    faults::FaultInjector injector(scenario, &sharded.engine());
    std::vector<faults::FaultRecord> records = injector.run(plan, coord);
    for (const faults::FaultRecord& rec : records) {
      std::printf("self-heal: %s repaired=%llu mttr=%.1fms\n",
                  rec.event.str().c_str(), (unsigned long long)rec.repaired,
                  rec.mttr_ms);
    }
  }

  // Optional chaos phase: run any requested fault plan (e.g. --faults mixed)
  // with the tenants live, then require the isolation SLO to survive it. A
  // controller failover replaces a leaf instance, so the tag-allocator
  // wiring is reapplied before re-auditing.
  if (!opts.faults.empty() && opts.faults != "rogue-rule") {
    faults::FaultScenario chaos =
        faults::make_fault_plan(opts.faults, scenario, opts.fault_seed);
    if (chaos.events.empty()) {
      std::fprintf(stderr, "unknown or empty fault plan '%s'; known plans:",
                   opts.faults.c_str());
      for (const auto& name : faults::fault_plan_names())
        std::fprintf(stderr, " %s", name.c_str());
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    ShardedRun sharded(scenario);
    faults::RecoveryCoordinator coord(scenario, &sharded.engine());
    coord.harden();
    faults::FaultInjector injector(scenario, &sharded.engine());
    std::vector<faults::FaultRecord> records = injector.run(chaos, coord);
    mgr.rewire_encapsulation();
    std::printf("chaos plan '%s': %zu faults injected, %zu recoveries\n",
                chaos.name.c_str(), chaos.events.size(), records.size());
  }

  mgmt::SliceAuditReport healed =
      mgmt::audit_slice_isolation(scenario.net, mgr.ue_slices());
  print_slice_audit(healed, "post-recovery audit");
  verify::VerifyReport after = scenario.mgmt->verify_data_plane();
  std::size_t residual = after.isolation_violations() + healed.findings.size();

  obs::MetricsRegistry& reg = obs::default_registry();
  reg.gauge("slicing_isolation_violations", {{"phase", "baseline"}})
      ->set(static_cast<double>(baseline_violations));
  reg.gauge("slicing_isolation_violations", {{"phase", "post-recovery"}})
      ->set(static_cast<double>(residual));
  reg.gauge("slicing_rogue_detected", {})->set(static_cast<double>(detected));

  if (baseline_violations != 0 || residual != 0) {
    std::fprintf(stderr, "ISOLATION FAILURE: baseline=%zu residual=%zu\n",
                 baseline_violations, residual);
    std::exit(1);
  }
  if (!plan.events.empty() && detected == 0) {
    std::fprintf(stderr, "ISOLATION FAILURE: rogue classifier not detected\n");
    std::exit(1);
  }
  std::printf("isolation SLO held: zero cross-tenant violations before and "
              "after the rogue-classifier fault\n");
}

void run() {
  const BenchOptions& opts = current_bench_options();
  print_header("Multi-tenant slicing — tag aggregation and isolation",
               "SoftCell-style policy tags let transit rules scale with "
               "(slice x clause x aggregate), not with bearers; recursive "
               "label translation carries them unchanged (§4.3)");

  double f = opts.scale < 1.0 ? opts.scale : 1.0;
  auto scaled = [f](std::size_t n, std::size_t floor_at) {
    auto s = static_cast<std::size_t>(static_cast<double>(n) * f);
    return s < floor_at ? floor_at : s;
  };
  std::size_t subs_per_slice = scaled(24, 8);
  std::size_t bearers_per_slice = scaled(48, 12);

  run_compression_sweep(subs_per_slice, bearers_per_slice);

  // Sections 2+3 share one scenario at the requested --encap/--slices, with
  // slice 0 under 4x load.
  EncapMode mode = opts.encap == "labels" ? EncapMode::kLabels : EncapMode::kTags;
  auto scenario = build_scenario_timed(paper_scale_params());
  auto mgr = build_tenants(*scenario, mode, opts.slices, subs_per_slice,
                           bearers_per_slice, /*skew_first=*/true);
  std::printf("\nactive scenario: %zu slices, encap=%s\n", opts.slices,
              slice::to_string(mode));

  run_skewed_load(*scenario, *mgr);

  // maybe_verify (--verify) should also see the tenant map.
  SliceManager* raw = mgr.get();
  set_verify_annotator([raw](verify::ControlState& state) {
    state.have_slices = true;
    state.ue_slices = raw->ue_slices();
  });
  run_isolation(*scenario, *mgr);
  maybe_verify(*scenario, "slicing");
  set_verify_annotator(nullptr);

  std::printf("\ntakeaway: tenants share the WAN but not rule state or tag "
              "space — tag aggregation compresses transit tables as slices "
              "multiply, and every delivered packet's tag decodes to its "
              "originating slice.\n");
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
