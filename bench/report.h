// Structured per-run benchmark reports: `--bench-json <path>` writes one
// BENCH_<name>.json document per bench run, carrying enough identity (git
// sha, build type, the knobs that shape the workload) and enough measurement
// (headline series, wall phases, per-shard profile summary, sim-time series,
// the full metrics snapshot) for `tools/bench_compare` to diff two runs and
// gate CI on headline regressions.
//
// Schema "softmow.bench.v1":
//   {
//     "schema": "softmow.bench.v1",
//     "bench": "<name>",
//     "meta": {"git_sha": "...", "build_type": "..."},
//     "options": {"threads": n, "shards": n, "scale": f, "seed": n},
//     "wall_ms": {"total": f, "sim": f, "setup": f},
//     "headline": [{"name", "value", "unit", "higher_is_better",
//                   "tolerance", "gate"}, ...],
//     "profile": {"shards": [{"shard", "events", "mail_sent", "mail_recv",
//                             "windows", "bounded_windows", "busy_ms",
//                             "stall_ms", "idle_ms", "critical_windows"}]},
//     "timeseries": [...],   // obs::TimeSeriesRecorder snapshot (v3 shape)
//     "metrics": [...]       // full obs registry snapshot (v3 shape)
//   }
//
// Headlines are the gated series: each carries its own relative regression
// tolerance. Deterministic counts gate tightly (default 10%); wall-clock
// headlines use a coarse cross-machine tolerance (kWallTolerance) so the CI
// gate catches step-function regressions without flaking on runner noise.
#pragma once

#include <string>
#include <vector>

#include "bench/common.h"
#include "obs/json.h"
#include "sim/time.h"

namespace softmow::bench {

/// Relative regression tolerance for wall-clock-derived headlines: CI
/// runners vary, so only order-of-magnitude regressions should gate.
inline constexpr double kWallTolerance = 0.80;
/// Default tolerance for deterministic (count-derived) headlines.
inline constexpr double kCountTolerance = 0.10;

/// One gated (or informational) headline series of a bench run.
struct Headline {
  std::string name;
  double value = 0;
  std::string unit;               ///< "ms", "x", "events", ... (display only)
  bool higher_is_better = false;  ///< regression direction
  double tolerance = kCountTolerance;  ///< relative change that fails the gate
  bool gate = true;               ///< false: recorded but never gated
};

/// Registers (or replaces, by name) a headline for the current run.
void add_headline(Headline headline);
[[nodiscard]] const std::vector<Headline>& headlines();
void clear_headlines();

/// Tells the report how much simulated time the bench replayed, enabling the
/// `speedup_over_realtime` headline (sim span / wall total, higher-better,
/// wall tolerance). live_replay sets this to its trace window.
void set_replayed_sim_duration(sim::Duration span);

/// Builds the report document from the current process state: registered
/// headlines, wall gauges, the default registry/recorder, and the
/// `profile_*` series (grouped per shard) when profiling ran.
[[nodiscard]] obs::JsonValue bench_report_json(const std::string& bench_name,
                                               const BenchOptions& opts);

/// Serializes bench_report_json() to `path`. Returns false on write failure.
bool write_bench_report(const std::string& bench_name, const std::string& path,
                        const BenchOptions& opts);

}  // namespace softmow::bench
