// Live control-plane replay: a scaled slice of the 48 h trace pushed through
// the *implemented* control plane (not the numeric aggregation of
// Fig. 11/12) — every bearer request, idle/active cycle and handover runs
// the real delegation, translation and teardown machinery, and the data
// plane is audited end to end afterwards.
//
// This validates the bridge between the trace-driven simulation benches and
// the implementation: delegation rates, mediation levels, rule churn and a
// clean audit under trace-shaped load.
#include "bench/common.h"

namespace softmow::bench {
namespace {

void run() {
  print_header("Live replay — trace-shaped load through the real control plane",
               "the §7 trace exercises §5's applications end to end");

  topo::ScenarioParams params = topo::small_scenario_params(current_bench_options().seed * 33);
  params.regions = 4;
  params.trace.duration_minutes = 6 * 60;
  params.trace.peak_bearers_per_min = 20000;
  params.trace.peak_ue_arrivals_per_min = 1500;
  params.trace.peak_handovers_per_min = 2500;
  auto scenario = topo::build_scenario(std::move(params));

  topo::TraceDriverParams driver_params;
  driver_params.event_scale = 2e-3;
  driver_params.ues_per_group = 2;
  topo::TraceDriver driver(*scenario, driver_params);
  auto report = driver.replay(0, 6 * 60);

  TextTable table({"metric", "value"});
  table.add_row({"minutes replayed", std::to_string(report.minutes_replayed)});
  table.add_row({"UEs attached", std::to_string(report.attaches)});
  table.add_row({"bearer requests", std::to_string(report.bearers_requested)});
  table.add_row({"bearer failures", std::to_string(report.bearers_failed)});
  table.add_row({"idle/active cycles", std::to_string(report.idle_cycles)});
  table.add_row({"handover requests", std::to_string(report.handovers_requested)});
  table.add_row({"handover failures", std::to_string(report.handovers_failed)});
  for (const auto& [level, count] : report.handovers_by_level) {
    table.add_row({"handovers mediated at level " + std::to_string(level),
                   std::to_string(count)});
  }
  table.add_row({"rules installed at end", std::to_string(report.rules_at_end)});

  // Delegation split across the hierarchy.
  std::uint64_t local = 0, delegated = 0;
  for (reca::Controller* leaf : scenario->mgmt->leaves()) {
    const auto& stats = scenario->apps->mobility(*leaf).stats();
    local += stats.bearers_local;
    delegated += stats.bearers_delegated;
  }
  table.add_row({"bearers served leaf-locally", std::to_string(local)});
  table.add_row({"bearers delegated upward", std::to_string(delegated)});
  table.print();

  auto audit = mgmt::audit_data_plane(scenario->net);
  std::printf("\naudit: %zu live classifiers probed, %zu delivered, %zu label "
              "violations -> %s\n",
              audit.classifiers_probed, audit.delivered, audit.label_violations,
              audit.clean() ? "CLEAN" : "FINDINGS");
  maybe_verify(*scenario, "static verify");
  std::printf("takeaway: trace-shaped load runs through §5.1/§5.2 unmodified — most "
              "bearers resolve at the leaves, the remainder climbs exactly as far as its "
              "QoS requires, and every installed path still delivers with at most one "
              "label on the wire.\n");
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
