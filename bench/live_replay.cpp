// Live control-plane replay: a scaled slice of the 48 h trace pushed through
// the *implemented* control plane (not the numeric aggregation of
// Fig. 11/12) — every bearer request, idle/active cycle and handover runs
// the real delegation, translation and teardown machinery, and the data
// plane is audited end to end afterwards.
//
// This validates the bridge between the trace-driven simulation benches and
// the implementation: delegation rates, mediation levels, rule churn and a
// clean audit under trace-shaped load.
//
// Observability: the replay_* counters are sampled into the default
// TimeSeriesRecorder once per replayed minute (the diurnal curves of
// `--metrics-json`/`--bench-json`), a load-proportional discovery phase then
// runs on the sharded engine (per-shard profile under `--profile`), and the
// report carries a speedup-over-real-time headline (simulated span / wall).
#include "bench/common.h"
#include "bench/report.h"
#include "obs/timeseries.h"

namespace softmow::bench {
namespace {

constexpr std::size_t kReplayMinutes = 6 * 60;

/// Schedules discovery rounds on the engine *after* the replayed window
/// (sim minutes kReplayMinutes..2*kReplayMinutes), one batch per 15-minute
/// bin, each leaf's round count proportional to its share of the bin's
/// bearer arrivals — so the per-shard profile shows the trace's diurnal
/// region skew, and the window-barrier sampler extends the recorded series.
void schedule_diurnal_load(sim::ShardedSimulator& engine, topo::Scenario& scenario) {
  const topo::LteTrace& trace = scenario.trace;
  auto& mp = *scenario.mgmt;
  for (std::size_t minute = 0; minute < std::min(kReplayMinutes, trace.bins.size());
       minute += 15) {
    const topo::TraceBin& bin = trace.bins[minute];
    std::vector<std::uint64_t> arrivals(scenario.partition.group_regions.size(), 0);
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < scenario.partition.group_regions.size(); ++r) {
      for (BsGroupId group : scenario.partition.group_regions[r]) {
        auto gi = trace.group_index.find(group);
        if (gi == trace.group_index.end()) continue;
        arrivals[r] += bin.bearer_arrivals[gi->second];
      }
      total += arrivals[r];
    }
    for (std::size_t r = 0; r < arrivals.size(); ++r) {
      reca::Controller* leaf = &mp.leaf(r);
      std::uint64_t rounds =
          1 + (total > 0 ? (4 * arrivals[r] + total / 2) / total : 0);
      for (std::uint64_t round = 0; round < rounds; ++round) {
        engine.schedule_at(leaf->shard(),
                           sim::TimePoint::zero() +
                               sim::Duration::minutes(static_cast<double>(kReplayMinutes + minute)) +
                               sim::Duration::millis(100.0 * static_cast<double>(round)),
                           [leaf] { leaf->run_link_discovery(); });
      }
    }
  }
}

void print_profile_table(sim::ShardedSimulator& engine) {
  const obs::MetricsRegistry& reg = obs::default_registry();
  TextTable table({"shard", "events", "windows", "bounded", "critical", "busy ms",
                   "stall ms", "idle ms"});
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    const obs::Labels labels{{"shard", std::to_string(s)}};
    auto counter = [&](const char* name) {
      const obs::Counter* c = reg.find_counter(name, labels);
      return c != nullptr ? c->value() : 0;
    };
    auto gauge = [&](const char* name) {
      const obs::Gauge* g = reg.find_gauge(name, labels);
      return g != nullptr ? g->value() : 0.0;
    };
    table.add_row({std::to_string(s), std::to_string(counter("profile_events_total")),
                   std::to_string(counter("profile_windows_total")),
                   std::to_string(counter("profile_bounded_windows_total")),
                   TextTable::num(gauge("profile_wall_critical_windows"), 0),
                   TextTable::num(gauge("profile_wall_busy_ms"), 2),
                   TextTable::num(gauge("profile_wall_stall_ms"), 2),
                   TextTable::num(gauge("profile_wall_idle_ms"), 2)});
  }
  std::printf("\nper-shard engine profile (diurnal discovery phase):\n");
  table.print();
}

void run() {
  print_header("Live replay — trace-shaped load through the real control plane",
               "the §7 trace exercises §5's applications end to end");

  topo::ScenarioParams params = topo::small_scenario_params(current_bench_options().seed * 33);
  params.regions = 4;
  params.trace.duration_minutes = kReplayMinutes;
  params.trace.peak_bearers_per_min = 20000;
  params.trace.peak_ue_arrivals_per_min = 1500;
  params.trace.peak_handovers_per_min = 2500;
  auto scenario = build_scenario_timed(std::move(params));

  // `--scale` sizes the resident UE population: 1.0 parks ~1M UEs in the
  // leaf mobility stores (the paper's trace population, §7.1) before bearer
  // churn runs over them; CI smoke at 0.25 keeps a quarter of that. The
  // flat per-UE/per-bearer stores are what make this affordable.
  const double scale = current_bench_options().scale;
  const std::size_t groups = std::max<std::size_t>(scenario->trace.groups.size(), 1);
  const std::size_t ues_per_group = std::max<std::size_t>(
      2, static_cast<std::size_t>(1.0e6 * scale) / groups);

  // Diurnal curves: one point per replayed minute for the load counters,
  // plus the engine's event counter (extended by the engine phase below).
  obs::TimeSeriesRecorder& recorder = obs::default_timeseries();
  recorder.track_counter("replay_bearers_requested_total");
  recorder.track_counter("replay_handovers_requested_total");
  recorder.track_counter("replay_idle_cycles_total");
  recorder.track_gauge("replay_rules_installed");
  recorder.track_counter("sim_events_executed_total");

  topo::TraceDriverParams driver_params;
  driver_params.event_scale = 2e-3;
  driver_params.ues_per_group = ues_per_group;
  driver_params.recorder = &recorder;
  topo::TraceDriver driver(*scenario, driver_params);
  auto report = driver.replay(0, kReplayMinutes);

  std::uint64_t ues_resident = 0;
  for (reca::Controller* leaf : scenario->mgmt->leaves())
    ues_resident += scenario->apps->mobility(*leaf).ue_count();

  TextTable table({"metric", "value"});
  table.add_row({"minutes replayed", std::to_string(report.minutes_replayed)});
  table.add_row({"UEs resident", std::to_string(ues_resident)});
  table.add_row({"bearer requests", std::to_string(report.bearers_requested)});
  table.add_row({"bearer failures", std::to_string(report.bearers_failed)});
  table.add_row({"idle/active cycles", std::to_string(report.idle_cycles)});
  table.add_row({"handover requests", std::to_string(report.handovers_requested)});
  table.add_row({"handover failures", std::to_string(report.handovers_failed)});
  for (const auto& [level, count] : report.handovers_by_level) {
    table.add_row({"handovers mediated at level " + std::to_string(level),
                   std::to_string(count)});
  }
  table.add_row({"rules installed at end", std::to_string(report.rules_at_end)});

  // Delegation split across the hierarchy.
  std::uint64_t local = 0, delegated = 0;
  for (reca::Controller* leaf : scenario->mgmt->leaves()) {
    const auto& stats = scenario->apps->mobility(*leaf).stats();
    local += stats.bearers_local;
    delegated += stats.bearers_delegated;
  }
  table.add_row({"bearers served leaf-locally", std::to_string(local)});
  table.add_row({"bearers delegated upward", std::to_string(delegated)});
  table.print();

  auto audit = mgmt::audit_data_plane(scenario->net);
  std::printf("\naudit: %zu live classifiers probed, %zu delivered, %zu label "
              "violations -> %s\n",
              audit.classifiers_probed, audit.delivered, audit.label_violations,
              audit.clean() ? "CLEAN" : "FINDINGS");
  maybe_verify(*scenario, "static verify");

  // Engine-driven diurnal discovery phase: the part `--threads` accelerates
  // and the shard profiler attributes.
  std::uint64_t alloc_fresh = 0, alloc_recycled = 0;
  {
    ShardedRun sharded(*scenario);
    sim::ShardedSimulator& engine = sharded.engine();
    engine.set_sampler(&recorder);
    schedule_diurnal_load(engine, *scenario);
    std::uint64_t engine_events = engine.run();
    alloc_fresh = engine.alloc_fresh_total();
    alloc_recycled = engine.alloc_recycled_total();
    std::printf("\nengine diurnal phase: %llu events in %llu windows over %zu shards "
                "(%llu fresh event slots, %llu recycled)\n",
                static_cast<unsigned long long>(engine_events),
                static_cast<unsigned long long>(engine.windows_executed()),
                engine.shard_count(), static_cast<unsigned long long>(alloc_fresh),
                static_cast<unsigned long long>(alloc_recycled));
    if (engine.profiling()) print_profile_table(engine);
    engine.set_sampler(nullptr);
  }

  // Wall-normalized headline: how much faster than real time the replayed
  // trace window ran end to end.
  set_replayed_sim_duration(sim::Duration::minutes(static_cast<double>(kReplayMinutes)));
  add_headline({"replay_bearers_requested", static_cast<double>(report.bearers_requested),
                "bearers", /*higher_is_better=*/true, kCountTolerance, /*gate=*/true});
  add_headline({"replay_handovers_requested", static_cast<double>(report.handovers_requested),
                "handovers", /*higher_is_better=*/true, kCountTolerance, /*gate=*/true});
  // Event-arena health (satellite of the memory overhaul): fresh slot
  // allocations are the pool's high-water mark — flat across a steady-state
  // window, so growth past tolerance means the recycler regressed. Both are
  // deterministic counts (per-shard pools, thread-invariant op sequence).
  add_headline({"sim_alloc_fresh", static_cast<double>(alloc_fresh), "slots",
                /*higher_is_better=*/false, kCountTolerance, /*gate=*/true});
  add_headline({"sim_alloc_recycled", static_cast<double>(alloc_recycled), "events",
                /*higher_is_better=*/true, kCountTolerance, /*gate=*/true});
  std::printf("takeaway: trace-shaped load runs through §5.1/§5.2 unmodified — most "
              "bearers resolve at the leaves, the remainder climbs exactly as far as its "
              "QoS requires, and every installed path still delivers with at most one "
              "label on the wire.\n");
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
