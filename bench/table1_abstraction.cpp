// Table 1: SoftMoW controller abstractions — per controller, what it
// discovered (switches, ports, links) vs what it exposes to its parent.
//
// Paper (321 switches, 4 leaf regions): leaves discover 55-98 switches,
// 213-416 ports, 80-167 links each and expose 18-26% of discovered ports
// (20.75% on average); 73% of all links are hidden at the root level.
#include "bench/common.h"

namespace softmow::bench {
namespace {

void run() {
  print_header("Table 1 — controller abstractions",
               "leaves expose ~20.75% of ports on average; 73% of links hidden at root");

  auto scenario = build_scenario_timed(paper_scale_params(0, 4, /*originate=*/false));
  maybe_verify(*scenario);
  auto& mp = *scenario->mgmt;

  TextTable table(
      {"controller", "SW", "ports discovered", "links", "ports exposed", "exposed %"});
  double exposure_sum = 0;
  std::size_t leaf_count = 0;

  for (reca::Controller* leaf : mp.leaves()) {
    leaf->abstraction().refresh();
    auto stats = leaf->abstraction().stats();
    double pct = 100.0 * static_cast<double>(stats.exposed_ports) /
                 static_cast<double>(stats.ports);
    exposure_sum += pct;
    ++leaf_count;
    table.add_row({leaf->name(), std::to_string(stats.switches),
                   std::to_string(stats.ports), std::to_string(stats.links),
                   std::to_string(stats.exposed_ports), TextTable::num(pct, 0)});
  }

  auto& root = mp.root();
  std::size_t root_ports = root.nib().total_ports();
  std::size_t root_links = root.nib().links().size();
  table.add_row({"root", std::to_string(root.nib().switch_count()),
                 std::to_string(root_ports), std::to_string(root_links), "-", "-"});
  table.print();

  // Hidden links: everything but the cross-region links the root discovers.
  std::size_t physical_links = 0;
  for (LinkId id : scenario->net.links()) {
    const dataplane::Link* l = scenario->net.link(id);
    if (scenario->net.is_access_switch(l->a.sw) || scenario->net.is_access_switch(l->b.sw))
      continue;  // count the core fabric, as the paper does
    ++physical_links;
  }
  double hidden = 100.0 * (1.0 - static_cast<double>(root_links) /
                                     static_cast<double>(physical_links));
  std::printf("\nmeasured: leaves expose %.2f%% of discovered ports on average "
              "(paper: 20.75%%)\n",
              exposure_sum / static_cast<double>(leaf_count));
  std::printf("measured: %.0f%% of the %zu core links are hidden at the root level "
              "(paper: 73%%)\n",
              hidden, physical_links);
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
