#include "bench/common.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "analysis/shard_check.h"
#include "bench/report.h"
#include "obs/chrome_trace.h"
#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/timeseries.h"

namespace softmow::bench {

namespace {

bool parse_positive_size(const std::string& value, std::size_t* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || n == 0) return false;
  *out = static_cast<std::size_t>(n);
  return true;
}

bool parse_nonneg_size(const std::string& value, std::size_t* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::size_t>(n);
  return true;
}

}  // namespace

const std::vector<OptionSpec>& bench_option_registry() {
  static const std::vector<OptionSpec> specs = {
      {"--metrics-json", "<path>", "dump metrics registry + trace as JSON",
       [](BenchOptions& o, const std::string& v) {
         o.metrics_json = v;
         return true;
       }},
      {"--metrics-csv", "<path>", "dump metrics registry as CSV",
       [](BenchOptions& o, const std::string& v) {
         o.metrics_csv = v;
         return true;
       }},
      {"--trace-chrome", "<path>",
       "write a Chrome Trace Event file\n(load at ui.perfetto.dev or chrome://tracing)",
       [](BenchOptions& o, const std::string& v) {
         o.trace_chrome = v;
         return true;
       }},
      {"--bench-json", "<path>",
       "write a structured BENCH_<name>.json run\nreport (headlines, wall phases, profile\nsummary; implies --profile)",
       [](BenchOptions& o, const std::string& v) {
         o.bench_json = v;
         return true;
       }},
      {"--profile", nullptr,
       "per-shard engine profiling: busy/idle/stall\nwall time, mailbox traffic, critical-shard\nattribution (profile_* series + counter tracks)",
       [](BenchOptions& o, const std::string&) {
         o.profile = true;
         return true;
       }},
      {"--latency-budget", nullptr,
       "print the per-operation critical-path\nlatency-budget table after the run",
       [](BenchOptions& o, const std::string&) {
         o.latency_budget = true;
         return true;
       }},
      {"--trace-capacity", "<n>", "cap the trace ring buffer at n spans/events",
       [](BenchOptions& o, const std::string& v) {
         return parse_positive_size(v, &o.trace_capacity);
       }},
      {"--scale", "<f>",
       "scale paper-size scenario parameters by f\n(e.g. 0.25 for CI smoke runs)",
       [](BenchOptions& o, const std::string& v) {
         char* end = nullptr;
         double f = std::strtod(v.c_str(), &end);
         if (v.empty() || end == nullptr || *end != '\0' || f <= 0) return false;
         o.scale = f;
         return true;
       }},
      {"--seed", "<n>",
       "master seed for scenario synthesis\n(default 1; deterministic per seed)",
       [](BenchOptions& o, const std::string& v) {
         std::size_t n = 0;
         if (!parse_positive_size(v, &n)) return false;
         o.seed = n;
         return true;
       }},
      {"--faults", "<name>",
       "fault plan for fault-injection benches:\nlink-flap, switch-crash, controller-crash,\nimpair, mixed, rogue-rule",
       [](BenchOptions& o, const std::string& v) {
         o.faults = v;
         return true;
       }},
      {"--fault-seed", "<n>",
       "seed for fault-plan target selection\n(default 1)",
       [](BenchOptions& o, const std::string& v) {
         std::size_t n = 0;
         if (!parse_positive_size(v, &n)) return false;
         o.fault_seed = n;
         return true;
       }},
      {"--threads", "<n>",
       "worker threads for sharded-engine phases\n(default 1: inline, same schedule)",
       [](BenchOptions& o, const std::string& v) { return parse_positive_size(v, &o.threads); }},
      {"--shards", "<n>",
       "override the engine's shard count\n(default 0: one per region + one per level)",
       [](BenchOptions& o, const std::string& v) { return parse_nonneg_size(v, &o.shards); }},
      {"--encap", "<mode>",
       "slicing encapsulation: tags (SoftCell\npolicy tags) or labels (per-path §4.3)",
       [](BenchOptions& o, const std::string& v) {
         if (v != "tags" && v != "labels") return false;
         o.encap = v;
         return true;
       }},
      {"--slices", "<n>",
       "tenant count for slicing benches\n(default 4, max 32)",
       [](BenchOptions& o, const std::string& v) {
         std::size_t n = 0;
         if (!parse_positive_size(v, &n) || n > 32) return false;
         o.slices = n;
         return true;
       }},
      {"--verify", nullptr,
       "run the static data-plane verifier on each\nscenario the bench builds",
       [](BenchOptions& o, const std::string&) {
         o.verify = true;
         return true;
       }},
      {"--shard-check", nullptr,
       "audit shard ownership + happens-before\nover the run; non-zero exit on findings\n(engine hooks need -DSOFTMOW_SHARD_CHECK=ON)",
       [](BenchOptions& o, const std::string&) {
         o.shard_check = true;
         return true;
       }},
      {"--help", nullptr, "show this message and exit",
       [](BenchOptions& o, const std::string&) {
         o.help = true;
         return true;
       }},
  };
  return specs;
}

void print_bench_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out, "usage: %s [options]\n\nOptions shared by every bench binary:\n", argv0);
  constexpr int kHelpColumn = 27;
  for (const OptionSpec& spec : bench_option_registry()) {
    std::string left = "  ";
    left += spec.name;
    if (spec.placeholder != nullptr) {
      left += ' ';
      left += spec.placeholder;
    }
    if (left.size() + 2 < kHelpColumn) left.resize(kHelpColumn, ' ');
    else left += "  ";
    // '\n' in the help text starts a continuation line in the help column.
    std::string help = spec.help;
    for (std::size_t nl = help.find('\n'); nl != std::string::npos; nl = help.find('\n', nl + 1))
      help.replace(nl, 1, "\n" + std::string(kHelpColumn, ' '));
    std::fprintf(out, "%s%s\n", left.c_str(), help.c_str());
  }
}

BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* flag = std::strcmp(argv[i], "-h") == 0 ? "--help" : argv[i];
    const OptionSpec* spec = nullptr;
    for (const OptionSpec& s : bench_option_registry()) {
      if (std::strcmp(flag, s.name) == 0) {
        spec = &s;
        break;
      }
    }
    if (spec == nullptr) {
      std::fprintf(stderr, "error: unknown argument '%s' (see --help)\n", argv[i]);
      opts.parse_ok = false;
      continue;
    }
    std::string value;
    if (spec->placeholder != nullptr) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", spec->name);
        opts.parse_ok = false;
        continue;
      }
      value = argv[++i];
    }
    if (!spec->apply(opts, value)) {
      std::fprintf(stderr, "error: bad value for %s: '%s'\n", spec->name, value.c_str());
      opts.parse_ok = false;
    }
  }
  return opts;
}

bool export_metrics(const BenchOptions& opts) {
  bool ok = true;
  if (!opts.trace_chrome.empty()) {
    // Profiler counter samples (per-window busy-ms/events per shard) render
    // as Perfetto counter tracks next to the span tracks.
    auto counters = sim::ShardedSimulator::drain_profile_samples();
    auto written =
        obs::write_chrome_trace(obs::default_tracer(), opts.trace_chrome, counters);
    if (written.ok()) {
      std::fprintf(stderr, "trace: wrote %s (load at ui.perfetto.dev)\n",
                   opts.trace_chrome.c_str());
    } else {
      std::fprintf(stderr, "trace: %s\n", written.error().message.c_str());
      ok = false;
    }
  }
  if (!opts.metrics_json.empty()) {
    std::string doc = obs::to_json(obs::default_registry(), &obs::default_tracer(),
                                   &obs::default_timeseries());
    auto written = obs::write_file(opts.metrics_json, doc);
    if (written.ok()) {
      std::fprintf(stderr, "metrics: wrote %s\n", opts.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "metrics: %s\n", written.error().message.c_str());
      ok = false;
    }
  }
  if (!opts.metrics_csv.empty()) {
    auto written = obs::write_file(
        opts.metrics_csv, obs::to_csv(obs::default_registry(), &obs::default_timeseries()));
    if (written.ok()) {
      std::fprintf(stderr, "metrics: wrote %s\n", opts.metrics_csv.c_str());
    } else {
      std::fprintf(stderr, "metrics: %s\n", written.error().message.c_str());
      ok = false;
    }
  }
  // Ring overflow is silent data loss for anyone reading the export: name
  // the count and the remedy once, on stderr (stdout stays byte-identical
  // across thread counts for the determinism diff).
  const obs::MetricsRegistry& reg = obs::default_registry();
  std::uint64_t trace_dropped = 0;
  for (const char* buffer : {"spans", "events"}) {
    const obs::Counter* c =
        reg.find_counter("trace_dropped_total", {{"buffer", buffer}});
    if (c != nullptr) trace_dropped += c->value();
  }
  if (trace_dropped > 0) {
    std::fprintf(stderr,
                 "trace: ring buffer dropped %llu spans/events (trace_dropped_total); "
                 "raise --trace-capacity to keep them\n",
                 static_cast<unsigned long long>(trace_dropped));
  }
  return ok;
}

namespace {
BenchOptions g_options;
std::function<void(verify::ControlState&)> g_verify_annotator;
double g_setup_wall_ms = 0;
}  // namespace

void add_setup_wall_ms(double ms) { g_setup_wall_ms += ms; }

std::unique_ptr<topo::Scenario> build_scenario_timed(topo::ScenarioParams params) {
  auto started = std::chrono::steady_clock::now();
  auto scenario = topo::build_scenario(std::move(params));
  add_setup_wall_ms(std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                              started)
                        .count());
  return scenario;
}

const BenchOptions& current_bench_options() { return g_options; }

void set_verify_annotator(std::function<void(verify::ControlState&)> annotator) {
  g_verify_annotator = std::move(annotator);
}

bool maybe_verify(topo::Scenario& scenario, const char* tag) {
  if (!current_bench_options().verify) return true;
  verify::ControlState state;
  {
    std::vector<const reca::Controller*> controllers;
    for (reca::Controller* c : scenario.mgmt->all_controllers()) controllers.push_back(c);
    state = verify::collect_control_state(controllers);
  }
  if (scenario.apps) state.bearers = scenario.apps->bearer_claims();
  if (g_verify_annotator) g_verify_annotator(state);
  verify::VerifyReport report =
      verify::verify_data_plane(scenario.net, &state, scenario.mgmt->verify_options());
  std::printf("%s%s%s\n", tag, *tag != '\0' ? ": " : "", report.summary().c_str());
  for (const verify::Finding& f : report.findings)
    std::printf("  %s\n", f.str().c_str());
  return report.clean();
}

ShardedRun::ShardedRun(topo::Scenario& scenario, sim::Duration parent_link_delay,
                       sim::Duration lookahead)
    : scenario_(&scenario) {
  auto started = std::chrono::steady_clock::now();
  const BenchOptions& opts = current_bench_options();
  std::size_t shards =
      opts.shards > 0 ? opts.shards : scenario.mgmt->natural_shard_count();
  sim::ShardedSimulator::Options engine_opts;
  engine_opts.threads = opts.threads;
  engine_opts.lookahead = lookahead;
  // A bench report without profile data answers none of the "which shard is
  // slow" questions it exists for, so --bench-json implies profiling.
  engine_opts.profile = opts.profile || !opts.bench_json.empty();
  engine_ = std::make_unique<sim::ShardedSimulator>(shards, engine_opts);
  scenario.mgmt->bind_shards(*engine_, parent_link_delay);
  add_setup_wall_ms(std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                              started)
                        .count());
}

ShardedRun::~ShardedRun() { scenario_->mgmt->unbind_shards(); }

int bench_main(int argc, char** argv, void (*run)()) {
  g_options = parse_bench_args(argc, argv);
  if (g_options.help) {
    print_bench_usage(stdout, argv[0]);
    return 0;
  }
  if (!g_options.parse_ok) {
    print_bench_usage(stderr, argv[0]);
    return 2;
  }
  if (g_options.trace_capacity > 0)
    obs::default_tracer().set_capacity(g_options.trace_capacity);
  // The checker session must span run() so engine instrumentation (ownership
  // hooks, handoff scopes, delivery audits) reports into it.
  std::optional<analysis::ShardChecker> checker;
  if (g_options.shard_check) {
    if (!analysis::ShardChecker::instrumented())
      std::fprintf(stderr,
                   "--shard-check: engine hooks compiled out; rebuild with "
                   "-DSOFTMOW_SHARD_CHECK=ON for ownership coverage\n");
    checker.emplace();
  }
  auto started = std::chrono::steady_clock::now();
  run();
  double total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started)
                        .count();
  // Wall-clock gauges for speedup reporting. Determinism checks comparing
  // exports across --threads values must strip bench_wall_ms series.
  obs::MetricsRegistry& reg = obs::default_registry();
  reg.gauge("bench_wall_ms", {{"phase", "total"}})->set(total_ms);
  reg.gauge("bench_wall_ms", {{"phase", "sim"}})
      ->set(sim::ShardedSimulator::process_wall_ms());
  reg.gauge("bench_wall_ms", {{"phase", "setup"}})->set(g_setup_wall_ms);
  if (g_options.latency_budget) {
    std::printf("\n%s",
                obs::latency_budget_table(
                    obs::analyze_root_operations(obs::default_tracer()))
                    .c_str());
  }
  bool shard_check_failed = false;
  if (checker.has_value()) {
    analysis::AnalysisReport report = checker->report();
    for (const analysis::Finding& f : report.findings)
      std::printf("shard-check: %s\n", f.str().c_str());
    std::printf("%s\n", report.summary().c_str());
    shard_check_failed = !report.clean();
    checker.reset();
  }
  bool exported = export_metrics(g_options);
  if (!g_options.bench_json.empty()) {
    // Bench name = binary basename (the BENCH_<name>.json convention).
    std::string name = argv[0];
    std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    if (!write_bench_report(name, g_options.bench_json, g_options)) exported = false;
  }
  if (shard_check_failed) return 3;
  return exported ? 0 : 1;
}

InternalCostTable compute_internal_costs(topo::Scenario& scenario) {
  InternalCostTable table;
  table.groups = scenario.trace.groups;
  table.egresses = scenario.egresses;

  auto& mp = *scenario.mgmt;
  auto& root = mp.root();
  const Graph& root_graph = root.routing().port_graph();

  // Root-graph trees from every egress node (metrics are symmetric, so the
  // tree from the egress equals the cost *to* the egress from every node).
  std::vector<core::FlatMap<NodeKey, EdgeMetrics>> to_egress;
  std::vector<NodeKey> egress_nodes;
  for (EgressId egress : table.egresses) {
    Endpoint attach = scenario.net.egress(egress)->attach;
    // Find the owning leaf and translate to the root's ID space.
    NodeKey node = 0;
    for (reca::Controller* leaf : mp.leaves()) {
      if (leaf->nib().sw(attach.sw) == nullptr) continue;
      leaf->abstraction().refresh();
      auto exposed = leaf->abstraction().to_exposed(attach);
      if (exposed)
        node = nos::port_key(leaf->abstraction().gswitch_id(), *exposed);
      break;
    }
    egress_nodes.push_back(node);
    to_egress.push_back(node != 0 ? root_graph.shortest_tree(node, Metric::kHops)
                                  : core::FlatMap<NodeKey, EdgeMetrics>{});
  }

  table.cost.assign(table.groups.size(),
                    std::vector<EdgeMetrics>(table.egresses.size(),
                                             EdgeMetrics{InternalCostTable::kUnreachable,
                                                         InternalCostTable::kUnreachable, 0}));

  for (reca::Controller* leaf : mp.leaves()) {
    leaf->abstraction().refresh();
    SwitchId gswitch = leaf->abstraction().gswitch_id();
    // Exposed ports of this leaf, as (local endpoint, root node key).
    std::vector<std::pair<Endpoint, NodeKey>> exposures;
    for (const southbound::PortDesc& pd : leaf->abstraction().features().ports) {
      auto local = leaf->abstraction().to_local(pd.port);
      if (local) exposures.emplace_back(*local, nos::port_key(gswitch, pd.port));
    }

    for (GBsId gbs_id : leaf->nib().gbs_list()) {
      const southbound::GBsAnnounce* gbs = leaf->nib().gbs(gbs_id);
      BsGroupId group = mgmt::group_for_gbs_id(gbs_id);
      auto git = scenario.trace.group_index.find(group);
      if (git == scenario.trace.group_index.end()) continue;
      std::size_t gi = git->second;

      auto tree = leaf->routing().reachability(
          Endpoint{gbs->attached_switch, gbs->attached_port}, Metric::kHops);

      for (std::size_t e = 0; e < table.egresses.size(); ++e) {
        EdgeMetrics best{InternalCostTable::kUnreachable, InternalCostTable::kUnreachable, 0};
        for (const auto& [local, root_node] : exposures) {
          auto lit = tree.find(nos::port_key(local.sw, local.port));
          if (lit == tree.end()) continue;
          auto rit = to_egress[e].find(root_node);
          if (rit == to_egress[e].end()) continue;
          EdgeMetrics total = lit->second.then(rit->second);
          if (best.hop_count < 0 || total.hop_count < best.hop_count ||
              (total.hop_count == best.hop_count && total.latency_us < best.latency_us)) {
            best = total;
          }
        }
        table.cost[gi][e] = best;
      }
    }
  }
  return table;
}

}  // namespace softmow::bench
