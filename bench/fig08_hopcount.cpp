// Figure 8: end-to-end hop counts vs number of egress points.
//
// Paper setup (§7.2): two-level SoftMoW, 4 leaf regions, 321 switches,
// 11 590 Internet destinations from iPlane; the root implements internal
// shortest paths accounting for internal + external hop counts. Reported:
// mean hop count falls from 20.83 (2 egress points) to 16 (8 egress
// points); 8-egress SoftMoW beats the rigid LTE baseline by ~36%.
#include "bench/common.h"

namespace softmow::bench {
namespace {

void run() {
  print_header("Figure 8 — end-to-end hop count vs egress points",
               "mean 20.83 (2-egrs) -> 16 (8-egrs); 8-egrs ~36% below LTE");

  auto scenario = build_scenario_timed(paper_scale_params(0, 4, /*originate=*/false));
  maybe_verify(*scenario);
  auto internal = compute_internal_costs(*scenario);
  auto prefixes = scenario->iplane->prefixes();

  // LTE baseline: one rigid region, one centralized PGW complex. The PGW
  // sits wherever the operator's Internet edge happens to be (the paper's
  // §1 premise: "the lack of sufficiently close Internet egress points is a
  // major cause of path inflation"). We model a *typical* placement — the
  // median egress by mean internal distance — neither best- nor worst-case.
  std::vector<std::pair<double, std::size_t>> by_mean;
  for (std::size_t e = 0; e < internal.egresses.size(); ++e) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t g = 0; g < internal.groups.size(); ++g) {
      if (internal.cost[g][e].hop_count < 0) continue;
      sum += internal.cost[g][e].hop_count;
      ++n;
    }
    by_mean.emplace_back(n > 0 ? sum / static_cast<double>(n) : 1e18, e);
  }
  std::sort(by_mean.begin(), by_mean.end());
  std::size_t pgw_index = by_mean[by_mean.size() / 2].second;

  TextTable table({"config", "min", "p25", "median", "p75", "max", "mean"});
  double lte_mean = 0, softmow8_mean = 0, softmow2_mean = 0;

  auto evaluate = [&](const std::string& name, std::size_t egress_count, bool lte) -> double {
    SampleSet hops;
    for (std::size_t g = 0; g < internal.groups.size(); ++g) {
      for (PrefixId prefix : prefixes) {
        double best = 1e18;
        if (lte) {
          const EdgeMetrics& in = internal.cost[g][pgw_index];
          auto ext = scenario->iplane->cost(internal.egresses[pgw_index], prefix);
          if (in.hop_count >= 0 && ext) best = in.hop_count + ext->hops;
        } else {
          for (std::size_t e = 0; e < egress_count && e < internal.egresses.size(); ++e) {
            const EdgeMetrics& in = internal.cost[g][e];
            if (in.hop_count < 0) continue;
            auto ext = scenario->iplane->cost(internal.egresses[e], prefix);
            if (!ext) continue;
            best = std::min(best, in.hop_count + ext->hops);
          }
        }
        if (best < 1e18) hops.add(best);
      }
    }
    BoxStats box = box_stats(hops);
    table.add_row({name, TextTable::num(box.min, 1), TextTable::num(box.p25, 1),
                   TextTable::num(box.median, 1), TextTable::num(box.p75, 1),
                   TextTable::num(box.max, 1), TextTable::num(box.mean, 2)});
    return box.mean;
  };

  softmow2_mean = evaluate("2-egrs", 2, false);
  evaluate("4-egrs", 4, false);
  softmow8_mean = evaluate("8-egrs", 8, false);
  lte_mean = evaluate("LTE", 0, true);
  table.print();

  std::printf("\nmeasured: mean %.2f (2-egrs) -> %.2f (8-egrs)\n", softmow2_mean,
              softmow8_mean);
  std::printf("measured: 8-egrs SoftMoW reduces mean end-to-end hop count by %.1f%% vs LTE "
              "(paper: ~36%%)\n",
              100.0 * (lte_mean - softmow8_mean) / lte_mean);
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
