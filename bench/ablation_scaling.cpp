// Ablation: control-plane scaling with the number of leaf regions.
//
// The motivation of the hierarchy (§1, §2.2): a flat control plane must
// absorb the entire network's signaling; partitioning into R regions divides
// both the discovery workload and the cellular signaling per controller,
// at the price of more inter-region handovers for the ancestors to mediate
// (which region optimization then reduces — Fig. 12). This bench sweeps R.
#include "bench/common.h"

namespace softmow::bench {
namespace {

const sim::Duration kService = sim::Duration::millis(1.0);

void run() {
  print_header("Ablation — scaling with the number of leaf regions",
               "per-controller load shrinks with R; inter-region coupling grows");

  TextTable table({"regions", "max leaf msgs", "max leaf conv (s)", "root msgs",
                   "cross links", "inter-region HO share"});

  for (std::size_t regions : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    auto scenario = topo::build_scenario(paper_scale_params(1, regions, /*originate=*/false));
    auto& mp = *scenario->mgmt;
    for (reca::Controller* c : mp.all_controllers())
      c->discovery().stats_mutable() = nos::DiscoveryStats{};
    for (reca::Controller* leaf : mp.leaves()) leaf->run_link_discovery();
    mp.root().run_link_discovery();
    maybe_verify(*scenario);

    std::uint64_t max_leaf = 0;
    for (reca::Controller* leaf : mp.leaves())
      max_leaf = std::max(max_leaf, leaf->discovery().stats().messages_processed());
    sim::QueueingStation station(kService);
    sim::TimePoint done;
    for (std::uint64_t m = 0; m < max_leaf; ++m) done = station.submit(sim::TimePoint::zero());

    // Handover coupling: share of all trace handovers that cross regions.
    double cross = 0, total = 0;
    for (const auto& [key, w] : scenario->trace.group_adjacency.edges()) {
      total += w;
      if (mp.leaf_index_of_group(key.first) != mp.leaf_index_of_group(key.second)) cross += w;
    }

    table.add_row({std::to_string(regions), std::to_string(max_leaf),
                   TextTable::num((done - sim::TimePoint::zero()).to_seconds(), 2),
                   std::to_string(mp.root().discovery().stats().messages_processed()),
                   std::to_string(mp.root().nib().links().size()),
                   TextTable::num(total > 0 ? 100 * cross / total : 0, 1) + "%"});
  }
  table.print();
  std::printf("\ntakeaway: doubling the regions roughly halves the busiest leaf's "
              "discovery workload while the root's stays tiny — the scalability the "
              "hierarchy buys; the growing inter-region handover share is the cost that "
              "§5.3's region optimization then attacks (Fig. 12).\n");
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
