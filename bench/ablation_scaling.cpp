// Ablation: control-plane scaling with the number of leaf regions.
//
// The motivation of the hierarchy (§1, §2.2): a flat control plane must
// absorb the entire network's signaling; partitioning into R regions divides
// both the discovery workload and the cellular signaling per controller,
// at the price of more inter-region handovers for the ancestors to mediate
// (which region optimization then reduces — Fig. 12). This bench sweeps R.
#include "bench/common.h"

namespace softmow::bench {
namespace {

const sim::Duration kService = sim::Duration::millis(1.0);

void run() {
  print_header("Ablation — scaling with the number of leaf regions",
               "per-controller load shrinks with R; inter-region coupling grows");

  TextTable table({"regions", "max leaf msgs", "max leaf conv (s)", "root msgs",
                   "cross links", "inter-region HO share"});

  std::uint64_t sustained_events = 0, sustained_windows = 0;
  std::size_t sustained_shards = 0;

  for (std::size_t regions : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    auto scenario = build_scenario_timed(paper_scale_params(0, regions, /*originate=*/false));
    auto& mp = *scenario->mgmt;
    for (reca::Controller* c : mp.all_controllers())
      c->discovery().stats_mutable() = nos::DiscoveryStats{};
    // The steady-state round runs on the sharded engine (leaves drain, then
    // the root), same schedule for any --threads value.
    {
      ShardedRun sharded(*scenario);
      sim::ShardedSimulator& engine = sharded.engine();
      for (reca::Controller* leaf : mp.leaves())
        engine.schedule(leaf->shard(), sim::Duration{},
                        [leaf] { leaf->run_link_discovery(); });
      engine.run();
      reca::Controller* root = &mp.root();
      engine.schedule(root->shard(), sim::Duration{},
                      [root] { root->run_link_discovery(); });
      engine.run();

      // Sustained load on the widest sweep point: several staggered periodic
      // rounds per leaf region — the wall-clock of this phase (exported as
      // bench_wall_ms{phase=sim}) is what --threads accelerates.
      if (regions == 8) {
        constexpr int kSustainedRounds = 8;
        for (reca::Controller* leaf : mp.leaves()) {
          for (int r = 0; r < kSustainedRounds; ++r)
            engine.schedule(leaf->shard(), sim::Duration::millis(100.0 * r),
                            [leaf] { leaf->run_link_discovery(); });
        }
        sustained_events = engine.run();
        sustained_windows = engine.windows_executed();
        sustained_shards = engine.shard_count();
        // Counts below reflect one steady-state round, as before the
        // sustained phase.
        for (reca::Controller* c : mp.all_controllers())
          c->discovery().stats_mutable() = nos::DiscoveryStats{};
        for (reca::Controller* leaf : mp.leaves())
          engine.schedule(leaf->shard(), sim::Duration{},
                          [leaf] { leaf->run_link_discovery(); });
        engine.run();
        engine.schedule(root->shard(), sim::Duration{},
                        [root] { root->run_link_discovery(); });
        engine.run();
      }
    }
    maybe_verify(*scenario);

    std::uint64_t max_leaf = 0;
    for (reca::Controller* leaf : mp.leaves())
      max_leaf = std::max(max_leaf, leaf->discovery().stats().messages_processed());
    sim::QueueingStation station(kService);
    sim::TimePoint done;
    for (std::uint64_t m = 0; m < max_leaf; ++m) done = station.submit(sim::TimePoint::zero());

    // Handover coupling: share of all trace handovers that cross regions.
    double cross = 0, total = 0;
    for (const auto& [key, w] : scenario->trace.group_adjacency.edges()) {
      total += w;
      if (mp.leaf_index_of_group(key.first) != mp.leaf_index_of_group(key.second)) cross += w;
    }

    table.add_row({std::to_string(regions), std::to_string(max_leaf),
                   TextTable::num((done - sim::TimePoint::zero()).to_seconds(), 2),
                   std::to_string(mp.root().discovery().stats().messages_processed()),
                   std::to_string(mp.root().nib().links().size()),
                   TextTable::num(total > 0 ? 100 * cross / total : 0, 1) + "%"});
  }
  table.print();
  std::printf("\nsustained engine load (8 regions): %llu events in %llu windows over "
              "%zu shards\n",
              static_cast<unsigned long long>(sustained_events),
              static_cast<unsigned long long>(sustained_windows), sustained_shards);
  std::printf("\ntakeaway: doubling the regions roughly halves the busiest leaf's "
              "discovery workload while the root's stays tiny — the scalability the "
              "hierarchy buys; the growing inter-region handover share is the cost that "
              "§5.3's region optimization then attacks (Fig. 12).\n");
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
