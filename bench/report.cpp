#include "bench/report.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

#ifndef SOFTMOW_GIT_SHA
#define SOFTMOW_GIT_SHA "unknown"
#endif
#ifndef SOFTMOW_BUILD_TYPE
#define SOFTMOW_BUILD_TYPE "unknown"
#endif

namespace softmow::bench {

namespace {

std::vector<Headline> g_headlines;
sim::Duration g_replayed_span{};

obs::JsonValue headline_json(const Headline& h) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("name", obs::JsonValue::string(h.name));
  out.set("value", obs::JsonValue::number(h.value));
  out.set("unit", obs::JsonValue::string(h.unit));
  out.set("higher_is_better", obs::JsonValue::boolean(h.higher_is_better));
  out.set("tolerance", obs::JsonValue::number(h.tolerance));
  out.set("gate", obs::JsonValue::boolean(h.gate));
  return out;
}

double find_gauge_value(const std::string& name, const obs::Labels& labels) {
  const obs::Gauge* g = obs::default_registry().find_gauge(name, labels);
  return g != nullptr ? g->value() : 0.0;
}

/// Groups the flushed profile_* series by their `shard` label into one
/// summary object per shard, ordered by shard index.
obs::JsonValue profile_json() {
  struct ShardSummary {
    std::map<std::string, double> fields;
  };
  std::map<std::uint64_t, ShardSummary> by_shard;
  static const std::map<std::string, std::string> kFieldOf = {
      {"profile_events_total", "events"},
      {"profile_mail_sent_total", "mail_sent"},
      {"profile_mail_recv_total", "mail_recv"},
      {"profile_windows_total", "windows"},
      {"profile_bounded_windows_total", "bounded_windows"},
      {"profile_wall_busy_ms", "busy_ms"},
      {"profile_wall_stall_ms", "stall_ms"},
      {"profile_wall_idle_ms", "idle_ms"},
      {"profile_wall_critical_windows", "critical_windows"},
  };
  for (const obs::MetricSample& s : obs::default_registry().snapshot()) {
    auto field = kFieldOf.find(s.name);
    if (field == kFieldOf.end()) continue;
    const std::string* shard = nullptr;
    for (const auto& [k, v] : s.labels)
      if (k == "shard") shard = &v;
    if (shard == nullptr) continue;
    std::uint64_t index = std::strtoull(shard->c_str(), nullptr, 10);
    double value = s.kind == obs::MetricKind::kCounter ? static_cast<double>(s.counter_value)
                                                       : s.gauge_value;
    by_shard[index].fields[field->second] = value;
  }

  obs::JsonValue shards = obs::JsonValue::array();
  for (const auto& [index, summary] : by_shard) {
    obs::JsonValue row = obs::JsonValue::object();
    row.set("shard", obs::JsonValue::number(static_cast<double>(index)));
    // Fixed field order (the kFieldOf values), not map order, for readability.
    static const char* kOrder[] = {"events",  "mail_sent",       "mail_recv",
                                   "windows", "bounded_windows", "busy_ms",
                                   "stall_ms", "idle_ms",        "critical_windows"};
    for (const char* f : kOrder) {
      auto it = summary.fields.find(f);
      row.set(f, obs::JsonValue::number(it != summary.fields.end() ? it->second : 0.0));
    }
    shards.push_back(std::move(row));
  }
  obs::JsonValue out = obs::JsonValue::object();
  const obs::Counter* windows = obs::default_registry().find_counter("profile_engine_windows_total");
  out.set("engine_windows",
          obs::JsonValue::number(windows != nullptr ? static_cast<double>(windows->value()) : 0.0));
  out.set("shards", std::move(shards));
  return out;
}

}  // namespace

void add_headline(Headline headline) {
  for (Headline& h : g_headlines) {
    if (h.name == headline.name) {
      h = std::move(headline);
      return;
    }
  }
  g_headlines.push_back(std::move(headline));
}

const std::vector<Headline>& headlines() { return g_headlines; }

void clear_headlines() {
  g_headlines.clear();
  g_replayed_span = sim::Duration{};
}

void set_replayed_sim_duration(sim::Duration span) { g_replayed_span = span; }

obs::JsonValue bench_report_json(const std::string& bench_name, const BenchOptions& opts) {
  const double wall_total = find_gauge_value("bench_wall_ms", {{"phase", "total"}});
  const double wall_sim = find_gauge_value("bench_wall_ms", {{"phase", "sim"}});
  const double wall_setup = find_gauge_value("bench_wall_ms", {{"phase", "setup"}});

  // Auto headlines: the wall phases every bench has, plus the replay speedup
  // when the bench declared its simulated span. Explicit add_headline()
  // entries with the same name win (added first, so the replace path hits).
  if (wall_total > 0)
    add_headline({"wall_total_ms", wall_total, "ms", false, kWallTolerance, true});
  // Ungated: the sim phase is tens of ms at CI scale, so scheduler jitter
  // alone exceeds any usable tolerance; wall_total_ms and the speedup
  // headline gate wall regressions at stable magnitudes.
  if (wall_sim > 0) add_headline({"wall_sim_ms", wall_sim, "ms", false, kWallTolerance, false});
  if (g_replayed_span > sim::Duration{} && wall_total > 0) {
    add_headline({"speedup_over_realtime", g_replayed_span.to_millis() / wall_total, "x", true,
                  kWallTolerance, true});
  }

  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("schema", obs::JsonValue::string("softmow.bench.v1"));
  doc.set("bench", obs::JsonValue::string(bench_name));

  obs::JsonValue meta = obs::JsonValue::object();
  meta.set("git_sha", obs::JsonValue::string(SOFTMOW_GIT_SHA));
  meta.set("build_type", obs::JsonValue::string(SOFTMOW_BUILD_TYPE));
  doc.set("meta", std::move(meta));

  obs::JsonValue options = obs::JsonValue::object();
  options.set("threads", obs::JsonValue::number(static_cast<double>(opts.threads)));
  options.set("shards", obs::JsonValue::number(static_cast<double>(opts.shards)));
  options.set("scale", obs::JsonValue::number(opts.scale));
  options.set("seed", obs::JsonValue::number(static_cast<double>(opts.seed)));
  doc.set("options", std::move(options));

  obs::JsonValue wall = obs::JsonValue::object();
  wall.set("total", obs::JsonValue::number(wall_total));
  wall.set("sim", obs::JsonValue::number(wall_sim));
  wall.set("setup", obs::JsonValue::number(wall_setup));
  doc.set("wall_ms", std::move(wall));

  obs::JsonValue headline = obs::JsonValue::array();
  for (const Headline& h : g_headlines) headline.push_back(headline_json(h));
  doc.set("headline", std::move(headline));

  doc.set("profile", profile_json());

  // Reuse the v3 exporter for the timeseries + metrics sections so one
  // parser serves both document kinds.
  obs::JsonValue obs_doc =
      obs::export_json(obs::default_registry(), nullptr, &obs::default_timeseries());
  if (const obs::JsonValue* ts = obs_doc.find("timeseries")) doc.set("timeseries", *ts);
  if (const obs::JsonValue* metrics = obs_doc.find("metrics")) doc.set("metrics", *metrics);
  return doc;
}

bool write_bench_report(const std::string& bench_name, const std::string& path,
                        const BenchOptions& opts) {
  auto written = obs::write_file(path, bench_report_json(bench_name, opts).dump() + "\n");
  if (written.ok()) {
    std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
    return true;
  }
  std::fprintf(stderr, "bench: %s\n", written.error().message.c_str());
  return false;
}

}  // namespace softmow::bench
