// Live controller migration — planned re-homing vs naive failover (§5.3/§6).
//
// Runs one planned MigrationManager cycle per hierarchy level (2-level and
// 3-level scenarios) with liveness probes in flight: the source keeps
// serving through the dual-control window, the flip happens at a barrier,
// and the disruption window is compared against the modeled MTTR of the
// naive alternative (crash-detect + hot-standby promotion via
// RecoveryCoordinator). An abort drill proves rollback leaves the source
// untouched, and a continuous phase drives ContinuousRehoming from
// diurnally rotating trace load until leaves re-home on their own.
//
// Deterministic by construction: every phase lands at an engine barrier,
// all durations are modeled (checkpoint bytes over a stream rate, RTTs,
// queueing stations) — the output is byte-identical for any --threads.
//
//   $ ./migration --threads 4
//   $ ./migration --scale 0.25 --faults link-flap   # migrate-under-chaos
#include <algorithm>
#include <set>

#include "bench/common.h"
#include "bench/report.h"
#include "obs/timeseries.h"

namespace softmow::bench {
namespace {

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", ms);
  return buf;
}

std::string fmt_x(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", x);
  return buf;
}

/// Same probe idiom as bench/fault_recovery: a few live bearers per region
/// whose uplink flows are re-injected around the migration to prove zero
/// data-plane disruption.
void attach_probes(topo::Scenario& scenario, faults::RecoveryCoordinator& coord) {
  auto& mp = *scenario.mgmt;
  std::uint64_t next_ue = 90001;  // clear of any other UE population
  for (const auto& region : scenario.partition.group_regions) {
    std::size_t added = 0;
    for (BsGroupId group : region) {
      if (added >= 3) break;
      const auto* bs_group = scenario.net.bs_group(group);
      reca::Controller* leaf = mp.leaf_of_group(group);
      if (bs_group == nullptr || bs_group->members.empty() || leaf == nullptr) continue;
      BsId bs = bs_group->members.front();
      apps::MobilityApp& mobility = scenario.apps->mobility(*leaf);
      UeId ue{next_ue++};
      if (!mobility.ue_attach(ue, bs).ok()) continue;
      apps::BearerRequest request;
      request.ue = ue;
      request.bs = bs;
      request.dst_prefix = PrefixId{17};
      if (!mobility.request_bearer(request).ok()) {
        (void)mobility.ue_detach(ue);
        continue;
      }
      coord.add_probe({ue, bs, request.dst_prefix});
      ++added;
    }
  }
}

struct LevelResult {
  std::string level;
  migrate::MigrationRecord planned;
  double naive_mttr_ms = 0;
  std::size_t probes_in_window = 0;   ///< probe failures during dual control
  std::size_t probe_failures = 0;     ///< probe failures after the cycle
  std::size_t verify_findings = 0;    ///< post-flip static verifier findings
  std::size_t rehomings = 0;          ///< continuous phase (L2 only)
  std::uint64_t checkpoint_bytes = 0; ///< failover delta-sync bytes (satellite)
};

/// One window of the continuous phase: per-region bearer arrivals from the
/// trace bin at the window start, with the diurnal peak rotated across
/// regions (timezone skew) so the hot region moves over the replay.
std::vector<double> window_loads(topo::Scenario& scenario, std::size_t window) {
  const topo::LteTrace& trace = scenario.trace;
  const std::size_t regions = scenario.partition.group_regions.size();
  std::vector<double> load(regions, 1.0);
  const std::size_t minute =
      trace.bins.empty() ? 0 : std::min(window * 90, trace.bins.size() - 1);
  if (!trace.bins.empty()) {
    const topo::TraceBin& bin = trace.bins[minute];
    for (std::size_t r = 0; r < regions; ++r) {
      for (BsGroupId group : scenario.partition.group_regions[r]) {
        auto gi = trace.group_index.find(group);
        if (gi == trace.group_index.end()) continue;
        load[r] += static_cast<double>(bin.bearer_arrivals[gi->second]);
      }
    }
  }
  load[window % regions] *= 3.0;  // rotating peak
  return load;
}

std::size_t run_continuous(topo::Scenario& scenario, sim::ShardedSimulator& engine,
                           migrate::MigrationManager& manager) {
  auto& mp = *scenario.mgmt;
  migrate::RehomingPolicy policy;
  policy.max_moves_per_step = 2;
  migrate::ContinuousRehoming loop(scenario, manager, policy);
  constexpr std::size_t kWindows = 4;

  std::printf("\n--- continuous re-homing (diurnal replay, %zu x 90 min windows) ---\n",
              kWindows);
  TextTable table({"window", "hot region", "moves", "placements"});
  for (std::size_t w = 0; w < kWindows; ++w) {
    std::vector<double> load = window_loads(scenario, w);
    double total = 0;
    for (double l : load) total += l;
    // Discovery load proportional to each region's share rides the engine
    // during the window, so migrations race real shard traffic.
    sim::TimePoint window_start =
        sim::TimePoint::zero() + sim::Duration::minutes(60.0 + 90.0 * static_cast<double>(w));
    for (std::size_t r = 0; r < mp.leaf_count(); ++r) {
      reca::Controller* leaf = &mp.leaf(r);
      auto rounds = static_cast<std::uint64_t>(1.0 + 3.0 * load[r] / total * 4.0);
      for (std::uint64_t round = 0; round < rounds; ++round) {
        engine.schedule_at(leaf->shard(),
                           window_start + sim::Duration::millis(100.0 * static_cast<double>(round)),
                           [leaf] { leaf->run_link_discovery(); });
      }
    }
    auto moved = loop.step(load, window_start);
    if (!moved.ok()) {
      std::printf("window %zu: re-homing step failed: %s\n", w,
                  moved.error().message.c_str());
      continue;
    }
    std::string placements;
    for (std::size_t i = 0; i < mp.leaf_count(); ++i) {
      if (!placements.empty()) placements += " ";
      placements += mp.leaf_placement(i).site;
    }
    table.add_row({std::to_string(w), std::to_string(w % mp.leaf_count()),
                   std::to_string(*moved), placements});
  }
  table.print();
  return static_cast<std::size_t>(loop.rehomings());
}

/// The migrate-under-chaos drill: open a cycle, let a fault plan run inside
/// the dual-control window, pick up the fault-induced delta with one more
/// catch-up round, then flip. Returns post-flip verifier findings.
std::size_t run_chaos(topo::Scenario& scenario, sim::ShardedSimulator& engine,
                      migrate::MigrationManager& manager,
                      faults::RecoveryCoordinator& coord, const std::string& plan_name) {
  auto& mp = *scenario.mgmt;
  faults::FaultScenario plan =
      faults::make_fault_plan(plan_name, scenario, current_bench_options().fault_seed);
  if (plan.events.empty()) {
    std::printf("chaos: unknown or empty fault plan '%s', skipping\n", plan_name.c_str());
    return 0;
  }
  const std::size_t leaf = 1 % mp.leaf_count();
  std::printf("\n--- migrate-under-chaos: plan '%s' races the dual-control window ---\n",
              plan.name.c_str());
  sim::TimePoint at = sim::TimePoint::zero() + sim::Duration::minutes(30.0);
  if (auto r = manager.begin(leaf, {"dc-chaos", sim::Duration::millis(8)}, at); !r.ok()) {
    std::printf("chaos: begin failed: %s\n", r.error().message.c_str());
    return 0;
  }
  (void)manager.stream_snapshot();
  (void)manager.catch_up();  // pre-warm + first delta, window now open

  faults::FaultInjector injector(scenario, &engine);
  std::vector<faults::FaultRecord> records = injector.run(plan, coord);
  std::printf("chaos: %zu faults recovered while leaf %s was dual-controlled\n",
              records.size(), mp.leaf(leaf).name().c_str());

  while (manager.phase() == migrate::Phase::kCatchUp) (void)manager.catch_up();
  (void)manager.flip();
  (void)manager.drain();
  const migrate::MigrationRecord& rec = manager.records().back();
  verify::VerifyReport report = mp.verify_data_plane();
  std::printf("chaos: migration completed under faults (%d catch-up rounds, "
              "%llu delta bytes), %zu verify findings\n",
              rec.catchup_rounds, (unsigned long long)rec.bytes_delta,
              report.findings.size());
  return report.findings.size();
}

LevelResult run_level(const std::string& label, bool with_mid, bool continuous) {
  const BenchOptions& opts = current_bench_options();
  LevelResult out;
  out.level = label;

  topo::ScenarioParams params = paper_scale_params();
  params.with_mid_level = with_mid;
  auto scenario = build_scenario_timed(std::move(params));
  auto& mp = *scenario->mgmt;

  ShardedRun sharded(*scenario);
  faults::RecoveryCoordinator coord(*scenario, &sharded.engine());
  coord.harden();
  attach_probes(*scenario, coord);
  const std::size_t baseline_failures = coord.probe_failures();

  migrate::MigrationOptions mopts;
  mopts.recorder = &obs::default_timeseries();
  migrate::MigrationManager manager(*scenario, &sharded.engine(), mopts);

  std::printf("\n[%s] %zu leaves, %zu baseline probe failures\n", label.c_str(),
              mp.leaf_count(), baseline_failures);

  // --- planned migration with probes in flight ------------------------------
  const mgmt::LeafPlacement site{"dc-east", sim::Duration::millis(6)};
  sim::TimePoint at = sim::TimePoint::zero() + sim::Duration::minutes(1.0);
  if (auto r = manager.begin(0, site, at); !r.ok()) {
    std::printf("begin failed: %s\n", r.error().message.c_str());
    return out;
  }
  (void)manager.stream_snapshot();
  (void)manager.catch_up();  // pre-warm: dual control is now established
  out.probes_in_window = coord.probe_failures();  // source still serves
  while (manager.phase() == migrate::Phase::kCatchUp) (void)manager.catch_up();
  (void)manager.flip();
  (void)manager.drain();
  out.planned = manager.records().back();
  out.probe_failures = coord.probe_failures();
  out.verify_findings = mp.verify_data_plane().findings.size();

  // --- abort drill: rollback leaves the source untouched --------------------
  (void)manager.begin(0, {"dc-west", sim::Duration::millis(9)}, at + sim::Duration::minutes(1.0));
  (void)manager.stream_snapshot();
  (void)manager.catch_up();
  (void)manager.abort("drill");
  const std::size_t post_abort_failures = coord.probe_failures();
  std::printf("abort drill: cycle aborted mid-catch-up, %zu probe failures after "
              "rollback (%zu aborted cycles on record)\n",
              post_abort_failures, manager.aborted());

  // --- naive baseline: crash-detect + hot-standby promotion -----------------
  sim::TimePoint crash_at = sim::TimePoint::zero() + sim::Duration::minutes(2.0);
  coord.checkpoint(crash_at);
  faults::FaultEvent crash;
  crash.at = crash_at;
  crash.kind = faults::FaultKind::kControllerCrash;
  crash.leaf = 1 % mp.leaf_count();
  if (auto rec = coord.execute(crash)) out.naive_mttr_ms = rec->mttr_ms;

  // Satellite: the failover standby now syncs deltas over the shared
  // checkpoint format; surface its last incremental cost.
  mgmt::HotStandby probe_standby(mp.leaf(0), mp.hub());
  probe_standby.sync(crash_at + sim::Duration::minutes(1.0));
  out.checkpoint_bytes = probe_standby.last_sync_bytes();

  if (continuous) {
    out.rehomings = run_continuous(*scenario, sharded.engine(), manager);
    if (!opts.faults.empty())
      out.verify_findings += run_chaos(*scenario, sharded.engine(), manager, coord,
                                       opts.faults);
    out.probe_failures = coord.probe_failures();
  }
  maybe_verify(*scenario, label.c_str());
  return out;
}

void run() {
  print_header("Live migration — planned re-homing vs naive failover",
               "§5.3: reconfiguration moves control without touching the data "
               "plane; a planned flip pays only the switchover window while "
               "naive failover pays detection + promotion on top");

  obs::TimeSeriesRecorder& recorder = obs::default_timeseries();
  recorder.track_counter("migration_bytes_transferred");
  recorder.track_counter("failover_checkpoint_bytes_total");
  for (const char* phase : {"snapshot", "catchup", "flip", "drain"})
    recorder.track_quantile("migration_ms", 0.95, {{"phase", phase}});
  recorder.track_quantile("migration_disruption_ms", 0.95);
  recorder.track_quantile("recovery_ms", 0.95, {{"kind", "controller-crash"}});

  std::vector<LevelResult> results;
  results.push_back(run_level("L2 (leaves under root)", /*with_mid=*/false,
                              /*continuous=*/true));
  results.push_back(run_level("L3 (mid level)", /*with_mid=*/true,
                              /*continuous=*/false));

  std::printf("\n--- planned migration vs naive failover (modeled, per level) ---\n");
  TextTable table({"hierarchy", "devices", "snapshot ms", "catchup ms", "bytes",
                   "disruption ms", "naive MTTR ms", "advantage"});
  for (const LevelResult& r : results) {
    double adv = r.planned.disruption_ms > 0 ? r.naive_mttr_ms / r.planned.disruption_ms : 0;
    table.add_row({r.level, std::to_string(r.planned.devices),
                   fmt_ms(r.planned.snapshot_ms), fmt_ms(r.planned.catchup_ms),
                   std::to_string(r.planned.bytes_total()),
                   fmt_ms(r.planned.disruption_ms), fmt_ms(r.naive_mttr_ms),
                   fmt_x(adv)});
  }
  table.print();

  std::size_t probe_failures = 0, verify_findings = 0, window_failures = 0;
  for (const LevelResult& r : results) {
    probe_failures += r.probe_failures;
    verify_findings += r.verify_findings;
    window_failures += r.probes_in_window;
  }
  std::printf("\nprobes failing during dual control: %zu\n", window_failures);
  std::printf("probes failing after migration: %zu\n", probe_failures);
  std::printf("post-flip verify findings: %zu\n", verify_findings);
  std::printf("continuous re-homings over diurnal replay: %zu\n", results[0].rehomings);
  std::printf("failover delta-sync bytes (shared checkpoint format): %llu\n",
              (unsigned long long)results[0].checkpoint_bytes);

  add_headline({"migration_disruption_ms", results[0].planned.disruption_ms, "ms",
                /*higher_is_better=*/false, kCountTolerance, /*gate=*/true});
  add_headline({"migration_bytes_transferred",
                static_cast<double>(results[0].planned.bytes_total()), "bytes",
                /*higher_is_better=*/false, kCountTolerance, /*gate=*/true});
  add_headline({"continuous_rehomings", static_cast<double>(results[0].rehomings),
                "moves", /*higher_is_better=*/true, kCountTolerance, /*gate=*/true});
  add_headline({"naive_failover_ms", results[0].naive_mttr_ms, "ms",
                /*higher_is_better=*/false, kCountTolerance, /*gate=*/false});
  std::printf("takeaway: a planned flip at a window barrier re-homes a whole leaf "
              "for the cost of the switchover alone — the checkpoint streams and "
              "sessions pre-warm while the source still serves, so bearers never "
              "notice, at every hierarchy level.\n");
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
