// Fault recovery — MTTR vs hierarchy level (§6).
//
// Injects a deterministic fault plan (link flaps, switch crash/restart,
// controller failover, southbound channel impairment) into the paper-scale
// scenario bound to the sharded engine, drives the self-healing control
// plane back to a verified-clean data plane, and reports the modeled
// mean-time-to-repair per fault: the recursive hierarchy (each level queues
// only the recovery messages it actually handled) against a flat-controller
// baseline (one station serves every message).
//
// Deterministic by construction: targets are drawn from sorted candidate
// lists under --fault-seed, mutations land at engine barriers, recovery
// traffic rides the engine's conservative windows and MTTR is modeled, never
// measured — the output is byte-identical for any --threads.
//
//   $ ./fault_recovery --faults mixed --fault-seed 1 --threads 4
#include <cstdlib>
#include <set>

#include "bench/common.h"
#include "obs/timeseries.h"

namespace softmow::bench {
namespace {

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", ms);
  return buf;
}

std::string fmt_x(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", x);
  return buf;
}

/// Registers a handful of live bearers per region as liveness probes: their
/// uplink flows are re-injected around every fault to count disrupted
/// bearers and blackholed packets, and again after the plan to prove the
/// data plane actually serves traffic post-recovery.
void attach_probes(topo::Scenario& scenario, faults::RecoveryCoordinator& coord) {
  auto& mp = *scenario.mgmt;
  std::uint64_t next_ue = 1;
  for (const auto& region : scenario.partition.group_regions) {
    std::size_t added = 0;
    for (BsGroupId group : region) {
      if (added >= 3) break;
      const auto* bs_group = scenario.net.bs_group(group);
      reca::Controller* leaf = mp.leaf_of_group(group);
      if (bs_group == nullptr || bs_group->members.empty() || leaf == nullptr) continue;
      BsId bs = bs_group->members.front();
      apps::MobilityApp& mobility = scenario.apps->mobility(*leaf);
      UeId ue{next_ue++};
      if (!mobility.ue_attach(ue, bs).ok()) continue;
      apps::BearerRequest request;
      request.ue = ue;
      request.bs = bs;
      request.dst_prefix = PrefixId{17};
      if (!mobility.request_bearer(request).ok()) {
        (void)mobility.ue_detach(ue);
        continue;
      }
      coord.add_probe({ue, bs, request.dst_prefix});
      ++added;
    }
  }
}

void run() {
  const BenchOptions& opts = current_bench_options();
  const std::string plan_name = opts.faults.empty() ? "mixed" : opts.faults;

  print_header("Fault recovery — MTTR vs hierarchy level",
               "§6: reconfiguration keeps failures local — a recursive hierarchy "
               "repairs each fault at the lowest capable level");

  auto scenario = build_scenario_timed(paper_scale_params());
  auto& mp = *scenario->mgmt;

  faults::FaultScenario plan =
      faults::make_fault_plan(plan_name, *scenario, opts.fault_seed);
  if (plan.events.empty()) {
    std::fprintf(stderr, "unknown or empty fault plan '%s'; known plans:",
                 plan_name.c_str());
    for (const auto& name : faults::fault_plan_names())
      std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  }

  // Each recovery force-samples the recorder at its modeled completion, so
  // `recovery_ms{kind}` p95 curves land in the exported `timeseries` array
  // as (sim-time, value) points instead of end-of-run totals.
  obs::TimeSeriesRecorder& recorder = obs::default_timeseries();
  std::set<std::string> kinds;
  for (const faults::FaultEvent& ev : plan.events)
    kinds.insert(faults::fault_kind_name(ev.kind));
  for (const std::string& kind : kinds)
    recorder.track_quantile("recovery_ms", 0.95, {{"kind", kind}});
  recorder.track_quantile("bearer_disruption_ms", 0.95);

  ShardedRun sharded(*scenario);
  faults::RecoveryOptions ropts;
  ropts.recorder = &recorder;
  faults::RecoveryCoordinator coord(*scenario, &sharded.engine(), ropts);
  coord.harden();
  attach_probes(*scenario, coord);
  std::printf("plan '%s' (fault seed %llu): %zu events over %zu leaf regions; "
              "%zu baseline probe failures\n",
              plan.name.c_str(), (unsigned long long)opts.fault_seed,
              plan.events.size(), mp.leaf_count(), coord.probe_failures());

  faults::FaultInjector injector(*scenario, &sharded.engine());
  std::vector<faults::FaultRecord> records = injector.run(plan, coord);

  std::printf("\n--- per-fault recovery (modeled, §7.3 queueing) ---\n");
  TextTable table({"fault", "level", "msgs", "recursive ms", "flat ms", "speedup",
                   "repaired", "resyncs", "disrupted", "verify"});
  for (const faults::FaultRecord& rec : records) {
    std::string lvl = "L";  // built piecewise: GCC 12 -Wrestrict FP on char*+string&&
    lvl += std::to_string(rec.resolved_level);
    table.add_row({rec.event.str(), lvl,
                   std::to_string(rec.recovery_messages), fmt_ms(rec.mttr_ms),
                   fmt_ms(rec.mttr_flat_ms), fmt_x(rec.speedup()),
                   std::to_string(rec.repaired), std::to_string(rec.resyncs),
                   std::to_string(rec.bearers_disrupted),
                   std::to_string(rec.verify_findings)});
  }
  table.print();

  // The headline: how far up the hierarchy each repair had to climb, and
  // what the same message load would have cost a flat controller.
  std::printf("\n--- MTTR vs hierarchy level (recursive vs flat baseline) ---\n");
  TextTable by_level({"resolved at", "faults", "mean recursive ms", "mean flat ms",
                      "mean speedup"});
  int max_level = 1;
  for (const faults::FaultRecord& rec : records)
    if (rec.resolved_level > max_level) max_level = rec.resolved_level;
  for (int level = 1; level <= max_level; ++level) {
    double recursive = 0, flat = 0, speedup = 0;
    std::size_t n = 0;
    for (const faults::FaultRecord& rec : records) {
      if (rec.resolved_level != level) continue;
      recursive += rec.mttr_ms;
      flat += rec.mttr_flat_ms;
      speedup += rec.speedup();
      ++n;
    }
    if (n == 0) continue;
    double dn = static_cast<double>(n);
    std::string lvl_name = "level ";
    lvl_name += std::to_string(level);
    by_level.add_row({lvl_name, std::to_string(n),
                      fmt_ms(recursive / dn), fmt_ms(flat / dn),
                      fmt_x(speedup / dn)});
  }
  by_level.print();

  std::size_t residual_probe_failures = coord.probe_failures();
  verify::VerifyReport report = mp.verify_data_plane();
  std::printf("\nfaults injected: %llu, recoveries completed: %zu\n",
              (unsigned long long)injector.injected(), records.size());
  std::printf("probes failing after recovery: %zu\n", residual_probe_failures);
  std::printf("post-recovery verify findings: %zu\n", report.findings.size());
  maybe_verify(*scenario, "post-recovery");
  std::printf("takeaway: every fault repairs at the lowest level that can see it — "
              "leaves re-route and resync their own regions while the root only "
              "mediates inter-region damage, so the recursive MTTR stays flat while "
              "the flat-baseline model pays for the whole message volume in one "
              "queue.\n");
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
