// Micro-benchmarks (google-benchmark): the hot paths of the controller —
// flow-table lookup, port-graph Dijkstra, route computation, path setup —
// and the RecA abstraction recompute.
//
// `--bench-json <path>` (stripped before google-benchmark sees the argv)
// additionally writes a BENCH_micro_core.json report with one
// `micro.<name>.real_ns` headline per benchmark, the series the CI perf
// gate diffs via tools/bench_compare.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/report.h"
#include "softmow/softmow.h"

namespace softmow {
namespace {

void BM_FlowTableLookup(benchmark::State& state) {
  dataplane::FlowTable table;
  const std::int64_t rules = state.range(0);
  for (std::int64_t i = 0; i < rules; ++i) {
    dataplane::FlowRule rule;
    rule.cookie = static_cast<std::uint64_t>(i) + 1;
    rule.priority = 100;
    rule.match.label = static_cast<std::uint32_t>(i);
    rule.match.in_port = PortId{static_cast<std::uint64_t>(i % 8) + 1};
    rule.actions = {dataplane::output(PortId{2})};
    (void)table.install(rule);
  }
  Packet pkt;
  pkt.labels.push_back(Label{static_cast<std::uint32_t>(rules - 1), 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.lookup(pkt, PortId{static_cast<std::uint64_t>((rules - 1) % 8) + 1}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(256)->Arg(4096);

struct GraphFixture {
  Graph graph;
  NodeKey last = 0;
  explicit GraphFixture(std::size_t nodes) {
    Rng rng(3);
    for (NodeKey n = 0; n < nodes; ++n) graph.add_node(n);
    for (std::size_t e = 0; e < nodes * 3; ++e) {
      NodeKey a = rng.uniform_u64(0, nodes - 1), b = rng.uniform_u64(0, nodes - 1);
      if (a == b) continue;
      graph.add_bidirectional(a, b, EdgeMetrics{rng.uniform(1, 10), 1, 1e6});
    }
    last = nodes - 1;
  }
};

void BM_Dijkstra(benchmark::State& state) {
  GraphFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.graph.shortest_path(0, fx.last, Metric::kLatency));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ShortestTree(benchmark::State& state) {
  GraphFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.graph.shortest_tree(0, Metric::kHops));
  }
}
BENCHMARK(BM_ShortestTree)->Arg(100)->Arg(1000);

struct ScenarioFixture {
  std::unique_ptr<topo::Scenario> scenario;
  ScenarioFixture() { scenario = topo::build_scenario(topo::small_scenario_params(7)); }
  static ScenarioFixture& get() {
    static ScenarioFixture fx;
    return fx;
  }
};

void BM_RootRouteComputation(benchmark::State& state) {
  auto& fx = ScenarioFixture::get();
  auto& root = fx.scenario->mgmt->root();
  GBsId gbs = root.nib().gbs_list().front();
  const auto* rec = root.nib().gbs(gbs);
  nos::RoutingRequest req;
  req.source = Endpoint{rec->attached_switch, rec->attached_port};
  req.dst_prefix = PrefixId{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(root.compute_route(req));
  }
}
BENCHMARK(BM_RootRouteComputation);

void BM_LeafBearerSetupTeardown(benchmark::State& state) {
  auto& fx = ScenarioFixture::get();
  auto& mp = *fx.scenario->mgmt;
  BsGroupId group = fx.scenario->partition.group_regions[0].front();
  BsId bs = fx.scenario->net.bs_group(group)->members.front();
  auto& mobility = fx.scenario->apps->mobility(*mp.leaf_of_group(group));
  UeId ue{424242};
  (void)mobility.ue_attach(ue, bs);
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = bs;
  request.dst_prefix = PrefixId{3};
  for (auto _ : state) {
    auto bearer = mobility.request_bearer(request);
    if (bearer.ok()) (void)mobility.deactivate_bearer(ue, *bearer);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LeafBearerSetupTeardown);

void BM_AbstractionRecompute(benchmark::State& state) {
  auto& fx = ScenarioFixture::get();
  auto& leaf = fx.scenario->mgmt->leaf(0);
  for (auto _ : state) {
    leaf.abstraction().mark_dirty();
    leaf.abstraction().recompute();
  }
}
BENCHMARK(BM_AbstractionRecompute);

/// ConsoleReporter that also records one headline per primary run. Wall-time
/// headlines gate with the coarse cross-machine tolerance; aggregate and
/// errored runs are skipped (repetitions report means separately).
class HeadlineReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      double real_ns = run.GetAdjustedRealTime();  // per-iteration, in run.time_unit
      // GetAdjustedRealTime converts to the run's display unit; normalize
      // back to nanoseconds for a unit-stable series name.
      switch (run.time_unit) {
        case benchmark::kNanosecond: break;
        case benchmark::kMicrosecond: real_ns *= 1e3; break;
        case benchmark::kMillisecond: real_ns *= 1e6; break;
        case benchmark::kSecond: real_ns *= 1e9; break;
      }
      bench::add_headline({"micro." + run.benchmark_name() + ".real_ns", real_ns, "ns",
                           /*higher_is_better=*/false, bench::kWallTolerance, /*gate=*/true});
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace
}  // namespace softmow

int main(int argc, char** argv) {
  // Peel off --bench-json before google-benchmark validates the argv (it
  // rejects flags it does not know).
  std::string bench_json;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      bench_json = argv[++i];
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) return 1;
  softmow::HeadlineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!bench_json.empty()) {
    softmow::bench::BenchOptions opts;  // defaults: micro benches take no shared flags
    if (!softmow::bench::write_bench_report("micro_core", bench_json, opts)) return 1;
  }
  return 0;
}
