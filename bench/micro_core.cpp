// Micro-benchmarks (google-benchmark): the hot paths of the controller —
// flow-table lookup, port-graph Dijkstra, route computation, path setup —
// and the RecA abstraction recompute.
#include <benchmark/benchmark.h>

#include "softmow/softmow.h"

namespace softmow {
namespace {

void BM_FlowTableLookup(benchmark::State& state) {
  dataplane::FlowTable table;
  const std::int64_t rules = state.range(0);
  for (std::int64_t i = 0; i < rules; ++i) {
    dataplane::FlowRule rule;
    rule.cookie = static_cast<std::uint64_t>(i) + 1;
    rule.priority = 100;
    rule.match.label = static_cast<std::uint32_t>(i);
    rule.match.in_port = PortId{static_cast<std::uint64_t>(i % 8) + 1};
    rule.actions = {dataplane::output(PortId{2})};
    (void)table.install(rule);
  }
  Packet pkt;
  pkt.labels.push_back(Label{static_cast<std::uint32_t>(rules - 1), 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.lookup(pkt, PortId{static_cast<std::uint64_t>((rules - 1) % 8) + 1}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(256)->Arg(4096);

struct GraphFixture {
  Graph graph;
  NodeKey last = 0;
  explicit GraphFixture(std::size_t nodes) {
    Rng rng(3);
    for (NodeKey n = 0; n < nodes; ++n) graph.add_node(n);
    for (std::size_t e = 0; e < nodes * 3; ++e) {
      NodeKey a = rng.uniform_u64(0, nodes - 1), b = rng.uniform_u64(0, nodes - 1);
      if (a == b) continue;
      graph.add_bidirectional(a, b, EdgeMetrics{rng.uniform(1, 10), 1, 1e6});
    }
    last = nodes - 1;
  }
};

void BM_Dijkstra(benchmark::State& state) {
  GraphFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.graph.shortest_path(0, fx.last, Metric::kLatency));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ShortestTree(benchmark::State& state) {
  GraphFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.graph.shortest_tree(0, Metric::kHops));
  }
}
BENCHMARK(BM_ShortestTree)->Arg(100)->Arg(1000);

struct ScenarioFixture {
  std::unique_ptr<topo::Scenario> scenario;
  ScenarioFixture() { scenario = topo::build_scenario(topo::small_scenario_params(7)); }
  static ScenarioFixture& get() {
    static ScenarioFixture fx;
    return fx;
  }
};

void BM_RootRouteComputation(benchmark::State& state) {
  auto& fx = ScenarioFixture::get();
  auto& root = fx.scenario->mgmt->root();
  GBsId gbs = root.nib().gbs_list().front();
  const auto* rec = root.nib().gbs(gbs);
  nos::RoutingRequest req;
  req.source = Endpoint{rec->attached_switch, rec->attached_port};
  req.dst_prefix = PrefixId{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(root.compute_route(req));
  }
}
BENCHMARK(BM_RootRouteComputation);

void BM_LeafBearerSetupTeardown(benchmark::State& state) {
  auto& fx = ScenarioFixture::get();
  auto& mp = *fx.scenario->mgmt;
  BsGroupId group = fx.scenario->partition.group_regions[0].front();
  BsId bs = fx.scenario->net.bs_group(group)->members.front();
  auto& mobility = fx.scenario->apps->mobility(*mp.leaf_of_group(group));
  UeId ue{424242};
  (void)mobility.ue_attach(ue, bs);
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = bs;
  request.dst_prefix = PrefixId{3};
  for (auto _ : state) {
    auto bearer = mobility.request_bearer(request);
    if (bearer.ok()) (void)mobility.deactivate_bearer(ue, *bearer);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LeafBearerSetupTeardown);

void BM_AbstractionRecompute(benchmark::State& state) {
  auto& fx = ScenarioFixture::get();
  auto& leaf = fx.scenario->mgmt->leaf(0);
  for (auto _ : state) {
    leaf.abstraction().mark_dirty();
    leaf.abstraction().recompute();
  }
}
BENCHMARK(BM_AbstractionRecompute);

}  // namespace
}  // namespace softmow

BENCHMARK_MAIN();
