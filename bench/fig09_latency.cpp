// Figure 9: CDF of end-to-end RTT latency for 2/4/8-egress SoftMoW vs LTE,
// replaying multiple iPlane snapshots for route churn (§7.2).
//
// Paper: "the 75th and 85th percentile RTT latencies reduce by 43% and 60%
// when we switch from the LTE network to the 8-egress point SoftMoW."
#include "bench/common.h"

namespace softmow::bench {
namespace {

constexpr int kSnapshots = 3;

// Control-plane bearer-setup model (§5.1): a burst of bearer requests per
// leaf, each serviced by its leaf controller, delegated up one RTT/2 to the
// root (whose single queue is shared by every region — the bottleneck), and
// answered back down. Each request is one "bearer.setup" span tree crossing
// both controller levels, so --latency-budget splits the end-to-end setup
// time into per-level queueing / processing / propagation.
constexpr int kBearerBurstPerLeaf = 25;
const sim::Duration kLeafService = sim::Duration::micros(500);
const sim::Duration kRootService = sim::Duration::millis(1.0);
const sim::Duration kHopOneWay = sim::Duration::millis(5.0);

void traced_bearer_setups(mgmt::ManagementPlane& mp) {
  obs::Tracer& tracer = obs::default_tracer();
  const sim::TimePoint t0 = sim::TimePoint::zero();
  const int root_level = mp.root().level();

  std::vector<reca::Controller*> leaves = mp.leaves();
  std::vector<std::unique_ptr<sim::QueueingStation>> leaf_q;
  for (reca::Controller* leaf : leaves)
    leaf_q.push_back(std::make_unique<sim::QueueingStation>(kLeafService, leaf->name(),
                                                            leaf->level()));
  sim::QueueingStation root_q(kRootService, "root", root_level);

  SampleSet setup_ms;
  // Round-robin across leaves so the shared root queue sees requests in
  // arrival order (every leaf's i-th request reaches the root together).
  for (int i = 0; i < kBearerBurstPerLeaf; ++i) {
    for (std::size_t l = 0; l < leaves.size(); ++l) {
      reca::Controller* leaf = leaves[l];
      obs::TraceContext op =
          tracer.open_span_under({}, t0, "bearer.setup", leaf->level(), leaf->name());
      sim::TimePoint at_leaf = leaf_q[l]->submit(t0, kLeafService, op);
      tracer.span_under(op, at_leaf, at_leaf + kHopOneWay, "delegate.up", leaf->level(),
                        leaf->name(), obs::SpanKind::kPropagate);
      sim::TimePoint at_root = root_q.submit(at_leaf + kHopOneWay, kRootService, op);
      tracer.span_under(op, at_root, at_root + kHopOneWay, "respond.down", root_level,
                        "root", obs::SpanKind::kPropagate);
      sim::TimePoint done = at_root + kHopOneWay;
      tracer.close_span(op, done, "delegated L" + std::to_string(root_level));
      setup_ms.add((done - t0).to_millis());
    }
  }
  std::printf("\ncontrol plane: %zu modeled bearer setups delegated to the root — mean "
              "%.1f ms, p95 %.1f ms (span trees: --trace-chrome; breakdown: "
              "--latency-budget)\n",
              static_cast<std::size_t>(kBearerBurstPerLeaf) * leaves.size(),
              setup_ms.mean(), setup_ms.percentile(95));
}

void run() {
  print_header("Figure 9 — end-to-end RTT latency CDF",
               "75th/85th pct RTT down 43%/60% from LTE to 8-egress SoftMoW");

  auto scenario = build_scenario_timed(paper_scale_params(0, 4, /*originate=*/false));
  maybe_verify(*scenario);
  auto internal = compute_internal_costs(*scenario);
  auto prefixes = scenario->iplane->prefixes();

  // The same PGW model as Fig. 8: typical (median) placement, by latency.
  std::vector<std::pair<double, std::size_t>> by_mean;
  for (std::size_t e = 0; e < internal.egresses.size(); ++e) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t g = 0; g < internal.groups.size(); ++g) {
      if (internal.cost[g][e].hop_count < 0) continue;
      sum += internal.cost[g][e].latency_us;
      ++n;
    }
    by_mean.emplace_back(n > 0 ? sum / static_cast<double>(n) : 1e18, e);
  }
  std::sort(by_mean.begin(), by_mean.end());
  std::size_t pgw_index = by_mean[by_mean.size() / 2].second;

  auto evaluate = [&](std::size_t egress_count, bool lte) {
    SampleSet rtt_ms;
    for (int snap = 0; snap < kSnapshots; ++snap) {
      scenario->iplane->set_snapshot(snap);
      for (std::size_t g = 0; g < internal.groups.size(); ++g) {
        for (PrefixId prefix : prefixes) {
          double best = 1e18;
          if (lte) {
            const EdgeMetrics& in = internal.cost[g][pgw_index];
            auto ext = scenario->iplane->cost(internal.egresses[pgw_index], prefix);
            if (in.hop_count >= 0 && ext) best = in.latency_us + ext->latency_us;
          } else {
            for (std::size_t e = 0; e < egress_count && e < internal.egresses.size(); ++e) {
              const EdgeMetrics& in = internal.cost[g][e];
              if (in.hop_count < 0) continue;
              auto ext = scenario->iplane->cost(internal.egresses[e], prefix);
              if (!ext) continue;
              best = std::min(best, in.latency_us + ext->latency_us);
            }
          }
          if (best < 1e18) rtt_ms.add(2.0 * best / 1000.0);  // one-way us -> RTT ms
        }
      }
    }
    scenario->iplane->set_snapshot(0);
    return rtt_ms;
  };

  SampleSet lte = evaluate(0, true);
  SampleSet e2 = evaluate(2, false);
  SampleSet e4 = evaluate(4, false);
  SampleSet e8 = evaluate(8, false);

  TextTable cdf({"RTT percentile", "LTE (ms)", "2-egrs", "4-egrs", "8-egrs"});
  for (double p : {10.0, 25.0, 50.0, 75.0, 85.0, 95.0, 99.0}) {
    cdf.add_row({TextTable::num(p, 0) + "th", TextTable::num(lte.percentile(p), 1),
                 TextTable::num(e2.percentile(p), 1), TextTable::num(e4.percentile(p), 1),
                 TextTable::num(e8.percentile(p), 1)});
  }
  cdf.print();

  double p75_cut = 100.0 * (lte.percentile(75) - e8.percentile(75)) / lte.percentile(75);
  double p85_cut = 100.0 * (lte.percentile(85) - e8.percentile(85)) / lte.percentile(85);
  std::printf("\nmeasured: 75th pct RTT down %.1f%% (paper: 43%%), 85th pct down %.1f%% "
              "(paper: 60%%) from LTE to 8-egress\n",
              p75_cut, p85_cut);
  std::printf("headline (§1): path inflation reduced by up to %.0f%% (paper: up to 60%%)\n",
              std::max(p75_cut, p85_cut));

  traced_bearer_setups(*scenario->mgmt);
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
