// Ablation (§1 problem 2): gateway load concentration.
//
// "The continued exponential growth of mobile traffic puts tremendous
// pressure on the scalability of PGWs." In the rigid architecture all
// traffic funnels through one PGW complex; SoftMoW spreads it across the
// egress points closest to each flow. This bench routes the 48 h trace's
// bearer demand to its chosen egress under each architecture and reports
// the per-gateway load distribution.
#include "bench/common.h"

namespace softmow::bench {
namespace {

void run() {
  print_header("Ablation — egress/PGW load concentration (§1, problem 2)",
               "rigid LTE funnels all traffic through one gateway; SoftMoW spreads it");

  auto scenario = build_scenario_timed(paper_scale_params(0, 4, /*originate=*/false));
  maybe_verify(*scenario);
  auto internal = compute_internal_costs(*scenario);
  const topo::LteTrace& trace = scenario->trace;

  // Demand per group: total bearer arrivals across the trace (a proxy for
  // carried traffic).
  std::vector<double> demand(trace.groups.size(), 0);
  for (const topo::TraceBin& bin : trace.bins) {
    for (std::size_t g = 0; g < trace.groups.size(); ++g)
      demand[g] += bin.bearer_arrivals[g];
  }
  double total_demand = 0;
  for (double d : demand) total_demand += d;

  TextTable table({"config", "gateways", "max share", "min share", "max/mean"});
  auto evaluate = [&](const std::string& name, std::size_t egress_count) {
    std::vector<double> load(egress_count, 0);
    for (std::size_t g = 0; g < trace.groups.size(); ++g) {
      // Each group's traffic exits at its hop-nearest egress among the set.
      std::size_t best = egress_count;
      double best_cost = 1e18;
      for (std::size_t e = 0; e < egress_count; ++e) {
        if (internal.cost[g][e].hop_count < 0) continue;
        if (internal.cost[g][e].hop_count < best_cost) {
          best_cost = internal.cost[g][e].hop_count;
          best = e;
        }
      }
      if (best < egress_count) load[best] += demand[g];
    }
    double max_share = 0, min_share = 1;
    for (double l : load) {
      max_share = std::max(max_share, l / total_demand);
      min_share = std::min(min_share, l / total_demand);
    }
    double mean = 1.0 / static_cast<double>(egress_count);
    table.add_row({name, std::to_string(egress_count),
                   TextTable::num(100 * max_share, 1) + "%",
                   TextTable::num(100 * min_share, 1) + "%",
                   TextTable::num(max_share / mean, 2) + "x"});
    return max_share;
  };

  double lte_peak = evaluate("LTE (single PGW)", 1);
  evaluate("SoftMoW 2-egrs", 2);
  evaluate("SoftMoW 4-egrs", 4);
  double softmow_peak = evaluate("SoftMoW 8-egrs", 8);
  table.print();

  std::printf("\nmeasured: the busiest gateway carries %.0f%% of all traffic under rigid "
              "LTE vs %.0f%% under 8-egress SoftMoW — a %.1fx reduction in peak gateway "
              "pressure\n",
              100 * lte_peak, 100 * softmow_peak, lte_peak / softmow_peak);
}

}  // namespace
}  // namespace softmow::bench

int main(int argc, char** argv) {
  return softmow::bench::bench_main(argc, argv, softmow::bench::run);
}
