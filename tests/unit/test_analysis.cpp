// Execution-model checker: findings/report plumbing, the direct record_*
// audit surface (compiled-in everywhere), and — when SOFTMOW_SHARD_CHECK is
// on — the three seeded engine violations from the ISSUE, each caught with
// the exact (structure, shard, event) blame triple, plus a clean
// engine-driven discovery round with zero findings.
#include "analysis/shard_check.h"

#include <gtest/gtest.h>

#include "analysis/report.h"
#include "analysis/shard_guard.h"
#include "dataplane/flow_table.h"
#include "nos/nib.h"
#include "sim/sharded.h"
#include "softmow/softmow.h"

namespace softmow::analysis {
namespace {

TEST(AnalysisReport, CountsAndCleanTrackAddedFindings) {
  AnalysisReport report;
  EXPECT_TRUE(report.clean());
  Finding f;
  f.kind = FindingKind::kForeignWrite;
  f.structure = "nib";
  report.add(f);
  f.kind = FindingKind::kLateDelivery;
  report.add(f);
  report.add(f);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.count(FindingKind::kForeignWrite), 1u);
  EXPECT_EQ(report.count(FindingKind::kLateDelivery), 2u);
  EXPECT_EQ(report.count(FindingKind::kForeignRead), 0u);
}

TEST(AnalysisReport, SortIsDeterministicBlameOrder) {
  // Workers report in wall-clock order; the sort restores the canonical
  // (when, accessor, structure, instance, seq) listing.
  AnalysisReport report;
  auto mk = [](std::int64_t when, std::size_t accessor, const char* structure,
               std::uint64_t seq) {
    Finding f;
    f.when_ns = when;
    f.accessor = accessor;
    f.structure = structure;
    f.event_seq = seq;
    return f;
  };
  report.add(mk(2000, 0, "nib", 5));
  report.add(mk(1000, 1, "nib", 9));
  report.add(mk(1000, 0, "tracer", 3));
  report.add(mk(1000, 0, "nib", 3));
  report.sort_findings();
  ASSERT_EQ(report.findings.size(), 4u);
  EXPECT_EQ(report.findings[0].structure, "nib");
  EXPECT_EQ(report.findings[0].accessor, 0u);
  EXPECT_EQ(report.findings[1].structure, "tracer");
  EXPECT_EQ(report.findings[2].accessor, 1u);
  EXPECT_EQ(report.findings[3].when_ns, 2000);
}

TEST(ShardChecker, DirectLateDeliveryAuditFlagsExactBlame) {
  // The happens-before audit is usable through record_* even in builds where
  // the engine hooks compile away.
  ShardChecker checker;
  checker.record_delivery(/*dst=*/1, /*when_ns=*/2000, /*src=*/0, /*src_seq=*/7,
                          /*dst_now_ns=*/2500);
  AnalysisReport report = checker.report();
  ASSERT_EQ(report.count(FindingKind::kLateDelivery), 1u);
  const Finding& f = report.findings.front();
  EXPECT_EQ(f.structure, "mailbox");
  EXPECT_EQ(f.instance, 1u);
  EXPECT_EQ(f.owner, 1u);     // destination shard
  EXPECT_EQ(f.accessor, 0u);  // source shard
  EXPECT_EQ(f.when_ns, 2000);
  EXPECT_EQ(f.event_seq, 7u);  // the message's send seq
  EXPECT_NE(f.detail.find("2500"), std::string::npos);
}

TEST(ShardChecker, OnTimeDeliveriesAndAuditTrafficStayClean) {
  ShardChecker checker;
  checker.record_window(1, 0, 1'000'000);
  checker.record_handoff(0, 1);
  checker.record_delivery(1, 2000, 0, 0, /*dst_now_ns=*/2000);  // when == now: on time
  checker.record_delivery(1, 3000, 0, 1, /*dst_now_ns=*/2000);
  EXPECT_TRUE(checker.clean());
  AnalysisReport report = checker.report();
  EXPECT_EQ(report.windows_audited, 1u);
  EXPECT_EQ(report.handoffs, 1u);
  EXPECT_EQ(report.deliveries_checked, 2u);
}

TEST(ShardChecker, RetentionCapKeepsCounting) {
  ShardChecker::Options opts;
  opts.max_findings = 2;
  ShardChecker checker(opts);
  for (std::uint64_t seq = 0; seq < 5; ++seq)
    checker.record_delivery(1, 1000, 0, seq, 5000);
  AnalysisReport report = checker.report();
  EXPECT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.count(FindingKind::kLateDelivery), 5u);
}

#if defined(SOFTMOW_SHARD_CHECK) && SOFTMOW_SHARD_CHECK
#define SKIP_UNLESS_INSTRUMENTED() ((void)0)
#else
#define SKIP_UNLESS_INSTRUMENTED() \
  GTEST_SKIP() << "engine instrumentation requires -DSOFTMOW_SHARD_CHECK=ON"
#endif

// Seeded violation 1 (ISSUE): an event on shard 0 mutates a NIB owned by
// shard 1. The checker must blame the exact structure and event.
TEST(ShardCheckEngine, OffShardNibMutationIsCaught) {
  SKIP_UNLESS_INSTRUMENTED();
  ASSERT_TRUE(ShardChecker::instrumented());
  nos::Nib nib;
  nib.guard().set_identity("nib", 7);
  nib.guard().set_owner(1);

  ShardChecker checker;
  sim::ShardedSimulator engine(2);
  engine.schedule(0, sim::Duration::millis(1), [&] {
    nib.upsert_link(Endpoint{SwitchId{1}, PortId{1}}, Endpoint{SwitchId{2}, PortId{1}}, {});
  });
  engine.run();

  AnalysisReport report = checker.report();
  ASSERT_EQ(report.count(FindingKind::kForeignWrite), 1u) << report.summary();
  const Finding& f = report.findings.front();
  EXPECT_EQ(f.structure, "nib");
  EXPECT_EQ(f.instance, 7u);
  EXPECT_EQ(f.owner, 1u);
  EXPECT_EQ(f.accessor, 0u);
  EXPECT_EQ(f.when_ns, 1'000'000);  // the offending event's sim-time
  EXPECT_EQ(f.event_seq, 0u);       // first event scheduled onto shard 0
}

// Seeded violation 2 (ISSUE): a flow-table install that skips the mailbox
// handoff — a direct foreign write instead of engine.post to the owner.
TEST(ShardCheckEngine, InstallSkippingMailboxHandoffIsCaught) {
  SKIP_UNLESS_INSTRUMENTED();
  dataplane::FlowTable table;
  table.guard().set_identity("flowtable", 42);
  table.guard().set_owner(1);

  ShardChecker checker;
  sim::ShardedSimulator engine(2);
  engine.schedule(0, sim::Duration::millis(2), [&] {
    dataplane::FlowRule rule;
    rule.cookie = 9;
    ASSERT_TRUE(table.install(rule).ok());
  });
  engine.run();

  AnalysisReport report = checker.report();
  ASSERT_GE(report.count(FindingKind::kForeignWrite), 1u) << report.summary();
  const Finding& f = report.findings.front();
  EXPECT_EQ(f.structure, "flowtable");
  EXPECT_EQ(f.instance, 42u);
  EXPECT_EQ(f.owner, 1u);
  EXPECT_EQ(f.accessor, 0u);
  EXPECT_EQ(f.when_ns, 2'000'000);
  EXPECT_EQ(f.event_seq, 0u);
}

// The same cross-shard effect routed the sanctioned way — engine.post into
// the owner's mailbox — must NOT be a finding, only a counted handoff.
TEST(ShardCheckEngine, SanctionedMailboxHandoffIsNotFlagged) {
  SKIP_UNLESS_INSTRUMENTED();
  dataplane::FlowTable table;
  table.guard().set_identity("flowtable", 42);
  table.guard().set_owner(1);

  ShardChecker checker;
  sim::ShardedSimulator engine(2);
  engine.schedule(0, sim::Duration::millis(1), [&] {
    engine.post(1, sim::Duration::millis(1), [&] {
      dataplane::FlowRule rule;
      rule.cookie = 9;
      ASSERT_TRUE(table.install(rule).ok());
    });
  });
  engine.run();

  AnalysisReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GE(report.handoffs, 1u);
  EXPECT_GE(report.deliveries_checked, 1u);
  EXPECT_GE(report.windows_audited, 1u);
  EXPECT_GT(report.accesses_checked, 0u);
}

// Seeded violation 3 (ISSUE): with the lookahead clamp disabled, a zero-delay
// cross-shard post lands behind the destination's executed clock — the
// happens-before audit must flag the late message with its send identity.
TEST(ShardCheckEngine, LateCrossShardDeliveryIsCaught) {
  SKIP_UNLESS_INSTRUMENTED();
  ShardChecker checker;
  sim::ShardedSimulator::Options opts;
  opts.lookahead = sim::Duration::millis(1);
  sim::ShardedSimulator engine(2, opts);
  engine.set_clamp_disabled_for_test(true);

  // Window [2ms, 3ms): shard 1 executes up to 2.5ms while shard 0's event at
  // 2ms posts mail stamped 2ms — delivered at the barrier into shard 1's past.
  engine.schedule(0, sim::Duration::millis(2),
                  [&] { engine.post(1, sim::Duration{}, [] {}); });
  engine.schedule(1, sim::Duration::millis(2), [] {});
  engine.schedule(1, sim::Duration::millis(2.5), [] {});
  engine.run();

  AnalysisReport report = checker.report();
  ASSERT_EQ(report.count(FindingKind::kLateDelivery), 1u) << report.summary();
  const Finding& f = report.findings.front();
  EXPECT_EQ(f.structure, "mailbox");
  EXPECT_EQ(f.owner, 1u);             // destination shard
  EXPECT_EQ(f.accessor, 0u);          // source shard
  EXPECT_EQ(f.when_ns, 2'000'000);    // the late message's delivery stamp
  EXPECT_EQ(f.event_seq, 0u);         // shard 0's first cross-shard send
  EXPECT_NE(f.detail.find("2500000"), std::string::npos) << f.detail;
}

// With the clamp active the identical workload is conservative — the audit
// sees the delivery and stays clean.
TEST(ShardCheckEngine, ClampedDeliveryOfSameWorkloadIsClean) {
  SKIP_UNLESS_INSTRUMENTED();
  ShardChecker checker;
  sim::ShardedSimulator::Options opts;
  opts.lookahead = sim::Duration::millis(1);
  sim::ShardedSimulator engine(2, opts);
  engine.schedule(0, sim::Duration::millis(2),
                  [&] { engine.post(1, sim::Duration{}, [] {}); });
  engine.schedule(1, sim::Duration::millis(2), [] {});
  engine.schedule(1, sim::Duration::millis(2.5), [] {});
  engine.run();
  EXPECT_TRUE(checker.clean()) << checker.report().summary();
  EXPECT_GE(checker.report().deliveries_checked, 1u);
}

// A real control-plane workload on the engine — the fig10-style discovery
// round over a full hierarchy at 8 workers — must be finding-free, with the
// audit demonstrably exercised (accesses checked, handoffs, deliveries).
TEST(ShardCheckEngine, CleanDiscoveryRoundOverScenario) {
  SKIP_UNLESS_INSTRUMENTED();
  auto scenario = topo::build_scenario(topo::small_scenario_params(1));
  auto& mp = *scenario->mgmt;

  ShardChecker checker;
  sim::ShardedSimulator::Options opts;
  opts.threads = 8;
  sim::ShardedSimulator engine(mp.natural_shard_count(), opts);
  mp.bind_shards(engine, sim::Duration::millis(5));
  for (reca::Controller* leaf : mp.leaves())
    engine.schedule(leaf->shard(), sim::Duration{}, [leaf] { leaf->run_link_discovery(); });
  engine.run();
  reca::Controller* root = &mp.root();
  engine.schedule(root->shard(), sim::Duration{}, [root] { root->run_link_discovery(); });
  engine.run();
  mp.unbind_shards();

  AnalysisReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.accesses_checked, 0u);
  EXPECT_GT(report.handoffs, 0u);
  EXPECT_GT(report.deliveries_checked, 0u);
  EXPECT_GT(report.windows_audited, 0u);
}

// unbind_shards must release every pinned guard: the same off-shard access
// that was a finding while bound is exempt afterwards.
TEST(ShardCheckEngine, UnbindReleasesOwnership) {
  SKIP_UNLESS_INSTRUMENTED();
  auto scenario = topo::build_scenario(topo::small_scenario_params(1));
  auto& mp = *scenario->mgmt;
  sim::ShardedSimulator engine(mp.natural_shard_count());
  mp.bind_shards(engine, sim::Duration::millis(5));
  reca::Controller* leaf = mp.leaves().front();
  EXPECT_NE(leaf->nib().guard().owner(), kNoShard);
  mp.unbind_shards();
  EXPECT_EQ(leaf->nib().guard().owner(), kNoShard);

  ShardChecker checker;
  sim::ShardedSimulator probe(2);
  probe.schedule(0, sim::Duration::millis(1), [&] {
    nos::SwitchRecord rec;
    rec.id = SwitchId{900};
    leaf->nib().upsert_switch(rec);
  });
  probe.run();
  EXPECT_TRUE(checker.clean()) << checker.report().summary();
}

// Seeded negative for the migration/failover flip path: an ownership flip
// that bypasses mgmt::handoff_leaf_tables — here, a "buggy migration"
// mutating a leaf's device table from the root's shard with no handoff —
// must be blamed with the exact (structure, owner, accessor) triple.
TEST(ShardCheckEngine, UnsanctionedLeafTableFlipIsBlamed) {
  SKIP_UNLESS_INSTRUMENTED();
  auto scenario = topo::build_scenario(topo::small_scenario_params(1));
  auto& mp = *scenario->mgmt;
  sim::ShardedSimulator engine(mp.natural_shard_count());
  mp.bind_shards(engine, sim::Duration::millis(5));

  reca::Controller* leaf = mp.leaves().front();
  ASSERT_FALSE(leaf->devices().empty());
  dataplane::FlowTable& table = mp.net().sw(leaf->devices().front())->table();
  const std::size_t owner = table.guard().owner();
  const std::size_t foreign = mp.root().shard();
  ASSERT_NE(owner, kNoShard);
  ASSERT_NE(owner, foreign);

  ShardChecker checker;
  engine.schedule(foreign, sim::Duration::millis(1), [&] {
    dataplane::FlowRule rule;
    rule.cookie = 77;
    ASSERT_TRUE(table.install(rule).ok());
  });
  engine.run();

  AnalysisReport report = checker.report();
  ASSERT_GE(report.count(FindingKind::kForeignWrite), 1u) << report.summary();
  const Finding& f = report.findings.front();
  EXPECT_EQ(f.structure, "flowtable");
  EXPECT_EQ(f.owner, owner);
  EXPECT_EQ(f.accessor, foreign);
  mp.unbind_shards();
}

// The same flip routed through the sanctioned path — handoff_leaf_tables
// re-pins the tables, after which the new owner mutates freely — is clean.
TEST(ShardCheckEngine, SanctionedHandoffLeafTablesFlipIsClean) {
  SKIP_UNLESS_INSTRUMENTED();
  auto scenario = topo::build_scenario(topo::small_scenario_params(1));
  auto& mp = *scenario->mgmt;
  sim::ShardedSimulator engine(mp.natural_shard_count());
  mp.bind_shards(engine, sim::Duration::millis(5));

  reca::Controller* leaf = mp.leaves().front();
  ASSERT_FALSE(leaf->devices().empty());
  dataplane::FlowTable& table = mp.net().sw(leaf->devices().front())->table();
  const std::size_t owner = table.guard().owner();
  const std::size_t foreign = mp.root().shard();
  ASSERT_NE(owner, foreign);

  ShardChecker checker;
  engine.schedule(foreign, sim::Duration::millis(1), [&] {
    mp.handoff_leaf_tables(0, foreign);  // the one sanctioned transfer
  });
  engine.schedule(foreign, sim::Duration::millis(2), [&] {
    dataplane::FlowRule rule;
    rule.cookie = 78;
    ASSERT_TRUE(table.install(rule).ok());  // now the owner: legal
  });
  engine.run();

  EXPECT_EQ(table.guard().owner(), foreign);
  AnalysisReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GE(report.handoffs, 1u);
  // Hygiene: pin the tables back where bind_shards put them.
  mp.handoff_leaf_tables(0, owner);
  mp.unbind_shards();
}

}  // namespace
}  // namespace softmow::analysis
