#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "core/ids.h"
#include "core/result.h"
#include "core/rng.h"
#include "core/weighted_adjacency.h"

namespace softmow {
namespace {

TEST(Ids, DefaultIsInvalid) {
  SwitchId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(SwitchId{3}.valid());
}

TEST(Ids, OrderingAndEquality) {
  EXPECT_LT(SwitchId{1}, SwitchId{2});
  EXPECT_EQ(UeId{7}, UeId{7});
  EXPECT_NE(UeId{7}, UeId{8});
}

TEST(Ids, StreamAndStr) {
  std::ostringstream os;
  os << ControllerId{4} << " " << GBsId{};
  EXPECT_EQ(os.str(), "c4 gbs<invalid>");
  EXPECT_EQ(BsId{2}.str(), "bs2");
}

TEST(Ids, HashWorksInUnorderedContainers) {
  std::unordered_set<SwitchId> set{SwitchId{1}, SwitchId{2}, SwitchId{1}};
  EXPECT_EQ(set.size(), 2u);
  std::unordered_set<Endpoint> eps{Endpoint{SwitchId{1}, PortId{1}},
                                   Endpoint{SwitchId{1}, PortId{2}}};
  EXPECT_EQ(eps.size(), 2u);
}

TEST(Ids, AllocatorIsMonotone) {
  IdAllocator<PathId> alloc;
  EXPECT_EQ(alloc.allocate(), PathId{0});
  EXPECT_EQ(alloc.allocate(), PathId{1});
  alloc.reserve_through(PathId{10});
  EXPECT_EQ(alloc.allocate(), PathId{11});
}

TEST(ResultT, ValueAndError) {
  Result<int> ok = 5;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.value_or(9), 5);

  Result<int> err{ErrorCode::kNotFound, "missing"};
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kNotFound);
  EXPECT_EQ(err.error().message, "missing");
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(ResultT, VoidSpecialization) {
  Result<void> ok = Ok();
  EXPECT_TRUE(ok.ok());
  Result<void> err{ErrorCode::kConflict, "dup"};
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kConflict);
}

TEST(ResultT, ErrorCodeNames) {
  EXPECT_STREQ(to_string(ErrorCode::kUnsatisfiable), "unsatisfiable");
  EXPECT_STREQ(to_string(ErrorCode::kDelegated), "delegated");
}

TEST(Rng, Deterministic) {
  Rng a(5), b(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    auto v = rng.uniform_u64(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(2);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.weighted_index(w), 1u);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng a(5);
  Rng child1 = a.fork(1);
  Rng a2(5);
  Rng child2 = a2.fork(2);
  // Different salts diverge (overwhelmingly likely).
  EXPECT_NE(child1.uniform_u64(0, 1u << 30), child2.uniform_u64(0, 1u << 30));
}

TEST(WeightedAdjacencyT, AccumulatesUndirected) {
  WeightedAdjacency<GBsId> g;
  g.add(GBsId{1}, GBsId{2}, 3);
  g.add(GBsId{2}, GBsId{1}, 4);  // same edge, reversed
  EXPECT_DOUBLE_EQ(g.weight(GBsId{1}, GBsId{2}), 7);
  EXPECT_DOUBLE_EQ(g.weight(GBsId{2}, GBsId{1}), 7);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 7);
}

TEST(WeightedAdjacencyT, SelfEdgesIgnored) {
  WeightedAdjacency<GBsId> g;
  g.add(GBsId{1}, GBsId{1}, 9);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(WeightedAdjacencyT, NeighborsAndDegree) {
  WeightedAdjacency<GBsId> g;
  g.add(GBsId{1}, GBsId{2}, 3);
  g.add(GBsId{1}, GBsId{3}, 4);
  g.add(GBsId{2}, GBsId{3}, 5);
  EXPECT_EQ(g.neighbors(GBsId{1}).size(), 2u);
  EXPECT_DOUBLE_EQ(g.degree_weight(GBsId{1}), 7);
  EXPECT_DOUBLE_EQ(g.degree_weight(GBsId{3}), 9);
}

TEST(WeightedAdjacencyT, RemoveNodeDropsEdges) {
  WeightedAdjacency<GBsId> g;
  g.add(GBsId{1}, GBsId{2}, 3);
  g.add(GBsId{2}, GBsId{3}, 5);
  g.remove_node(GBsId{2});
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.nodes().contains(GBsId{2}));
  EXPECT_TRUE(g.nodes().contains(GBsId{1}));
}

TEST(WeightedAdjacencyT, MergeAccumulates) {
  WeightedAdjacency<GBsId> a, b;
  a.add(GBsId{1}, GBsId{2}, 3);
  b.add(GBsId{1}, GBsId{2}, 4);
  b.add(GBsId{2}, GBsId{3}, 1);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.weight(GBsId{1}, GBsId{2}), 7);
  EXPECT_DOUBLE_EQ(a.weight(GBsId{2}, GBsId{3}), 1);
}

TEST(WeightedAdjacencyT, SetOverwrites) {
  WeightedAdjacency<GBsId> g;
  g.add(GBsId{1}, GBsId{2}, 3);
  g.set(GBsId{1}, GBsId{2}, 10);
  EXPECT_DOUBLE_EQ(g.weight(GBsId{1}, GBsId{2}), 10);
}

}  // namespace
}  // namespace softmow
