#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace softmow::sim {
namespace {

TEST(Duration, UnitConversions) {
  EXPECT_EQ(Duration::millis(5).to_micros(), 5000);
  EXPECT_EQ(Duration::seconds(2).to_millis(), 2000);
  EXPECT_EQ(Duration::minutes(3).to_seconds(), 180);
  EXPECT_EQ(Duration::hours(1).to_minutes(), 60);
  EXPECT_EQ((Duration::millis(1) + Duration::micros(500)).to_micros(), 1500);
  EXPECT_EQ((Duration::millis(10) * 2.5).to_millis(), 25);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Duration::millis(30), [&] { order.push_back(3); });
  sim.schedule(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule(Duration::millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().since_start().to_millis(), 30);
}

TEST(Simulator, SameInstantIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule(Duration::millis(1), [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration::millis(1), [&] {
    ++fired;
    sim.schedule(Duration::millis(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now().since_start().to_millis(), 2);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration::millis(10), [&] { ++fired; });
  sim.schedule(Duration::millis(30), [&] { ++fired; });
  sim.run_until(TimePoint::at(Duration::millis(20)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.now().since_start().to_millis(), 20);  // advanced to deadline
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilExecutesEventExactlyAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration::millis(20), [&] { ++fired; });
  sim.schedule(Duration::millis(20) + Duration::micros(1), [&] { ++fired; });
  sim.run_until(TimePoint::at(Duration::millis(20)));
  // The deadline is inclusive: an event at exactly t=deadline runs; one a
  // single tick later stays queued.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.now().since_start().to_millis(), 20);
}

TEST(QueueingStation, TotalWaitAccumulatesAcrossBusyPeriods) {
  QueueingStation station(Duration::millis(10));
  // Busy period 1: three arrivals at t=0 wait 0, 10, 20 ms.
  (void)station.submit(TimePoint::zero());
  (void)station.submit(TimePoint::zero());
  (void)station.submit(TimePoint::zero());
  EXPECT_EQ(station.total_wait().to_millis(), 30);
  // Idle gap, then busy period 2: arrivals at t=100 wait 0 and 10 ms —
  // total_wait keeps accumulating, it is not per-busy-period.
  (void)station.submit(TimePoint::at(Duration::millis(100)));
  (void)station.submit(TimePoint::at(Duration::millis(100)));
  EXPECT_EQ(station.total_wait().to_millis(), 40);
  EXPECT_EQ(station.processed(), 5u);
}

TEST(QueueingStation, SerializesBackToBackArrivals) {
  QueueingStation station(Duration::millis(10));
  TimePoint t0 = TimePoint::zero();
  EXPECT_EQ(station.submit(t0).since_start().to_millis(), 10);
  EXPECT_EQ(station.submit(t0).since_start().to_millis(), 20);
  EXPECT_EQ(station.submit(t0).since_start().to_millis(), 30);
  EXPECT_EQ(station.processed(), 3u);
  // Second and third waited 10 and 20 ms.
  EXPECT_EQ(station.total_wait().to_millis(), 30);
}

TEST(QueueingStation, IdleServerStartsImmediately) {
  QueueingStation station(Duration::millis(10));
  auto first = station.submit(TimePoint::at(Duration::millis(5)));
  EXPECT_EQ(first.since_start().to_millis(), 15);
  // Arrival after the server went idle: no wait.
  auto second = station.submit(TimePoint::at(Duration::millis(100)));
  EXPECT_EQ(second.since_start().to_millis(), 110);
  EXPECT_EQ(station.total_wait().to_millis(), 0);
}

TEST(QueueingStation, PerMessageServiceOverride) {
  QueueingStation station(Duration::millis(10));
  auto done = station.submit(TimePoint::zero(), Duration::millis(1));
  EXPECT_EQ(done.since_start().to_millis(), 1);
}

TEST(QueueingStation, ResetClearsState) {
  QueueingStation station(Duration::millis(10));
  (void)station.submit(TimePoint::zero());
  station.reset();
  EXPECT_EQ(station.processed(), 0u);
  EXPECT_EQ(station.submit(TimePoint::zero()).since_start().to_millis(), 10);
}

}  // namespace
}  // namespace softmow::sim
