#include <gtest/gtest.h>

#include "dataplane/network.h"

namespace softmow::dataplane {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a = net.add_switch({0, 0});
    b = net.add_switch({1, 0});
    c = net.add_switch({2, 0});
    ab = *net.connect(a, b, sim::Duration::millis(5), 1000);
    bc = *net.connect(b, c, sim::Duration::millis(5), 1000);
  }

  PhysicalNetwork net;
  SwitchId a, b, c;
  LinkId ab, bc;
};

TEST_F(NetworkTest, ConnectCreatesPortsAndSymmetricLink) {
  const Link* link = net.link(ab);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->a.sw, a);
  EXPECT_EQ(link->b.sw, b);
  EXPECT_EQ(net.peer_of(link->a), link->b);
  EXPECT_EQ(net.peer_of(link->b), link->a);
  EXPECT_EQ(net.sw(a)->port(link->a.port)->peer, PeerKind::kSwitch);
}

TEST_F(NetworkTest, LinkDownBlocksPeerLookupAndNotifiesObserver) {
  int notifications = 0;
  net.set_link_observer([&](const Link&, bool) { ++notifications; });
  ASSERT_TRUE(net.set_link_up(ab, false).ok());
  EXPECT_FALSE(net.peer_of(net.link(ab)->a).has_value());
  ASSERT_TRUE(net.set_link_up(ab, true).ok());
  EXPECT_TRUE(net.peer_of(net.link(ab)->a).has_value());
  EXPECT_EQ(notifications, 2);
  // Setting the same state twice does not re-notify.
  ASSERT_TRUE(net.set_link_up(ab, true).ok());
  EXPECT_EQ(notifications, 2);
}

TEST_F(NetworkTest, BandwidthReservationEnforcesCapacity) {
  EXPECT_TRUE(net.reserve_bandwidth(ab, 600).ok());
  EXPECT_EQ(net.link(ab)->available_kbps(), 400);
  EXPECT_EQ(net.reserve_bandwidth(ab, 600).code(), ErrorCode::kExhausted);
  EXPECT_TRUE(net.release_bandwidth(ab, 600).ok());
  EXPECT_EQ(net.link(ab)->available_kbps(), 1000);
  // Over-release clamps at zero reservation.
  EXPECT_TRUE(net.release_bandwidth(ab, 999).ok());
  EXPECT_EQ(net.link(ab)->available_kbps(), 1000);
}

TEST_F(NetworkTest, BsGroupGetsAccessSwitchWiredToCore) {
  BsGroupId g = net.add_bs_group(a);
  const BsGroup* group = net.bs_group(g);
  ASSERT_NE(group, nullptr);
  EXPECT_TRUE(net.is_access_switch(group->access_switch));
  EXPECT_EQ(group->core_attach.sw, a);
  // Radio port is port 1 of the access switch.
  EXPECT_EQ(net.sw(group->access_switch)->port(PortId{1})->peer, PeerKind::kBsGroup);
  BsId bs = net.add_base_station(g, {0, 1});
  EXPECT_EQ(net.base_station(bs)->group, g);
  EXPECT_EQ(group->members.size(), 1u);
}

TEST_F(NetworkTest, CoreGraphExcludesAccessSwitches) {
  net.add_bs_group(a);
  Graph g = net.build_core_graph();
  EXPECT_EQ(g.node_count(), 3u);  // a, b, c only
  EXPECT_EQ(g.edge_count(), 4u);  // two links, both directions
}

TEST_F(NetworkTest, UplinkDeliveryToEgress) {
  BsGroupId g = net.add_bs_group(a);
  BsId bs = net.add_base_station(g, {0, 1});
  EgressId egress = net.add_egress(c);
  const BsGroup* group = net.bs_group(g);

  // access:1 -> access:2, a -> b -> c -> egress.
  Switch* access = net.sw(group->access_switch);
  FlowRule classify;
  classify.cookie = 1;
  classify.match.ue = UeId{1};
  classify.actions = {push_label(Label{5, 1}), output(PortId{2})};
  ASSERT_TRUE(access->table().install(classify).ok());

  auto transit = [&](SwitchId sw, PortId out) {
    FlowRule rule;
    rule.cookie = 2;
    rule.match.label = 5;
    rule.actions = {output(out)};
    ASSERT_TRUE(net.sw(sw)->table().install(rule).ok());
  };
  transit(a, net.link(ab)->a.port);
  transit(b, net.link(bc)->a.port);
  FlowRule exit;
  exit.cookie = 3;
  exit.match.label = 5;
  exit.actions = {pop_label(), output(net.egress(egress)->attach.port)};
  ASSERT_TRUE(net.sw(c)->table().install(exit).ok());

  Packet pkt;
  pkt.ue = UeId{1};
  auto report = net.inject_uplink(pkt, bs);
  EXPECT_EQ(report.outcome, DeliveryReport::Outcome::kExternal);
  EXPECT_EQ(report.egress, egress);
  EXPECT_EQ(report.hops, 4);  // access, a, b, c
  EXPECT_TRUE(report.packet.labels.empty());
  // 1ms access uplink + 5ms + 5ms core links.
  EXPECT_NEAR(report.latency.to_millis(), 11.0, 1e-9);
}

TEST_F(NetworkTest, MiddleboxBounceCountsAndReenters) {
  MiddleboxId mb = net.add_middlebox(b, MiddleboxType::kFirewall);
  PortId mb_port = net.middlebox(mb)->attach.port;

  // a -> b; at b: to middlebox; on return (in_port = mb port): to c.
  FlowRule to_mb;
  to_mb.cookie = 1;
  to_mb.match.label = 5;
  to_mb.match.in_port = net.link(ab)->b.port;
  to_mb.actions = {output(mb_port)};
  FlowRule from_mb;
  from_mb.cookie = 2;
  from_mb.match.label = 5;
  from_mb.match.in_port = mb_port;
  from_mb.actions = {pop_label(), output(net.link(bc)->a.port)};
  ASSERT_TRUE(net.sw(b)->table().install(to_mb).ok());
  ASSERT_TRUE(net.sw(b)->table().install(from_mb).ok());

  EgressId egress = net.add_egress(c);
  FlowRule exit;
  exit.cookie = 3;
  exit.actions = {output(net.egress(egress)->attach.port)};
  ASSERT_TRUE(net.sw(c)->table().install(exit).ok());

  Packet pkt;
  pkt.labels.push_back(Label{5, 1});
  auto report = net.inject_at(pkt, net.link(ab)->b);
  EXPECT_EQ(report.outcome, DeliveryReport::Outcome::kExternal);
  ASSERT_EQ(report.middleboxes_traversed.size(), 1u);
  EXPECT_EQ(report.middleboxes_traversed[0], mb);
  EXPECT_EQ(net.middlebox(mb)->packets_processed, 1u);
}

TEST_F(NetworkTest, ForwardingLoopHitsHopGuard) {
  // a and b bounce the packet forever.
  FlowRule at_a;
  at_a.cookie = 1;
  at_a.actions = {output(net.link(ab)->a.port)};
  ASSERT_TRUE(net.sw(a)->table().install(at_a).ok());
  FlowRule at_b;
  at_b.cookie = 1;
  at_b.actions = {output(net.link(ab)->b.port)};
  ASSERT_TRUE(net.sw(b)->table().install(at_b).ok());

  Packet pkt;
  auto report = net.inject_at(pkt, net.link(ab)->b);
  EXPECT_EQ(report.outcome, DeliveryReport::Outcome::kLooped);
  EXPECT_GE(report.hops, static_cast<double>(PhysicalNetwork::kHopGuard));
}

TEST_F(NetworkTest, RehomeBsGroupMovesUplink) {
  BsGroupId g = net.add_bs_group(a);
  SwitchId old_attach = net.bs_group(g)->core_attach.sw;
  EXPECT_EQ(old_attach, a);
  ASSERT_TRUE(net.rehome_bs_group(g, c).ok());
  EXPECT_EQ(net.bs_group(g)->core_attach.sw, c);
  // The access switch still has its radio port and a working uplink.
  auto peer = net.peer_of(Endpoint{net.bs_group(g)->access_switch, PortId{2}});
  EXPECT_FALSE(peer.has_value());  // old port's link is gone
}

TEST_F(NetworkTest, DeliveryToRanOnDownlinkPort) {
  BsGroupId g = net.add_bs_group(a);
  const BsGroup* group = net.bs_group(g);
  // a -> access -> radio port.
  FlowRule at_a;
  at_a.cookie = 1;
  at_a.actions = {output(net.bs_group(g)->core_attach.port)};
  ASSERT_TRUE(net.sw(a)->table().install(at_a).ok());
  FlowRule at_access;
  at_access.cookie = 1;
  at_access.actions = {output(PortId{1})};
  ASSERT_TRUE(net.sw(group->access_switch)->table().install(at_access).ok());

  Packet pkt;
  auto report = net.inject_at(pkt, net.link(ab)->a);
  EXPECT_EQ(report.outcome, DeliveryReport::Outcome::kDeliveredToRan);
  EXPECT_EQ(report.delivered_group, g);
}

TEST_F(NetworkTest, TotalRulesCountsAcrossSwitches) {
  EXPECT_EQ(net.total_rules(), 0u);
  FlowRule rule;
  rule.cookie = 1;
  ASSERT_TRUE(net.sw(a)->table().install(rule).ok());
  ASSERT_TRUE(net.sw(b)->table().install(rule).ok());
  EXPECT_EQ(net.total_rules(), 2u);
}

}  // namespace
}  // namespace softmow::dataplane
