// Interdomain route propagation (§4.2), packet-model helpers, and AppSuite
// wiring.
#include <gtest/gtest.h>

#include "softmow/softmow.h"

namespace softmow {
namespace {

TEST(PacketModel, HeaderAndDepthAccounting) {
  Packet p;
  p.payload_bytes = 1000;
  EXPECT_EQ(p.header_bytes(), 0u);
  EXPECT_EQ(p.wire_bytes(), 1000u);
  p.labels.push_back(Label{1, 1});
  p.labels.push_back(Label{2, 2});
  EXPECT_EQ(p.header_bytes(), 2 * kLabelHeaderBytes);
  EXPECT_EQ(p.wire_bytes(), 1000u + 2 * kLabelHeaderBytes);
  EXPECT_EQ(p.label_depth(), 2u);

  // max_depth_seen covers both the trace history and the current stack.
  p.trace.push_back(Packet::HopRecord{SwitchId{1}, PortId{1}, PortId{2}, 3});
  EXPECT_EQ(p.max_depth_seen(), 3u);
  p.trace.clear();
  EXPECT_EQ(p.max_depth_seen(), 2u);
}

class InterdomainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    s1 = net.add_switch();
    s2 = net.add_switch();
    (void)net.connect(s1, s2);
    group = net.add_bs_group(s1);
    net.add_base_station(group, {});
    egress = net.add_egress(s2);
    mgmt::HierarchySpec spec;
    spec.leaves.push_back(mgmt::RegionSpec{"west", {s1}, {group}});
    spec.leaves.push_back(mgmt::RegionSpec{"east", {s2}, {}});
    mp = std::make_unique<mgmt::ManagementPlane>(&net);
    mp->bootstrap(spec);
    suite = std::make_unique<apps::AppSuite>(*mp);
  }

  struct TwoPrefixProvider : apps::ExternalPathProvider {
    EgressId egress_id;
    std::vector<PrefixId> prefixes() const override { return {PrefixId{1}, PrefixId{2}}; }
    std::optional<apps::ExternalCost> cost(EgressId e, PrefixId p) const override {
      if (!(e == egress_id)) return std::nullopt;
      return apps::ExternalCost{static_cast<double>(4 + p.value), 1000.0 * (1 + p.value)};
    }
  };

  dataplane::PhysicalNetwork net;
  SwitchId s1, s2;
  BsGroupId group;
  EgressId egress;
  std::unique_ptr<mgmt::ManagementPlane> mp;
  std::unique_ptr<apps::AppSuite> suite;
};

TEST_F(InterdomainFixture, RoutesTranslateUpwardPerLevel) {
  TwoPrefixProvider provider;
  provider.egress_id = egress;
  suite->originate_interdomain(provider);

  // The east leaf holds the route in its own (physical) ID space...
  auto& east = mp->leaf(1);
  auto local_routes = east.nib().external_routes(PrefixId{1});
  ASSERT_EQ(local_routes.size(), 1u);
  EXPECT_EQ(local_routes[0].egress.sw, s2);
  EXPECT_DOUBLE_EQ(local_routes[0].hops, 5);

  // ...and the root holds it re-keyed to the east G-switch's exposed port.
  auto root_routes = mp->root().nib().external_routes(PrefixId{1});
  ASSERT_EQ(root_routes.size(), 1u);
  EXPECT_EQ(root_routes[0].egress.sw, east.abstraction().gswitch_id());
  EXPECT_DOUBLE_EQ(root_routes[0].hops, 5);
  // The west leaf (no egress of its own) has none.
  EXPECT_TRUE(mp->leaf(0).nib().external_routes(PrefixId{1}).empty());
}

TEST_F(InterdomainFixture, ReoriginationRefreshesCosts) {
  TwoPrefixProvider provider;
  provider.egress_id = egress;
  suite->originate_interdomain(provider);
  // Copy: the view is invalidated (values replaced in place) by the churn.
  auto before_view = mp->root().nib().external_routes(PrefixId{2});
  std::vector<nos::ExternalRoute> before(before_view.begin(), before_view.end());
  ASSERT_EQ(before.size(), 1u);

  // Route churn (new snapshot): costs change, entries are replaced, not
  // duplicated.
  struct Worse : TwoPrefixProvider {
    std::optional<apps::ExternalCost> cost(EgressId e, PrefixId p) const override {
      auto base = TwoPrefixProvider::cost(e, p);
      if (!base) return std::nullopt;
      return apps::ExternalCost{base->hops + 3, base->latency_us};
    }
  } churned;
  churned.egress_id = egress;
  suite->originate_interdomain(churned);
  auto after = mp->root().nib().external_routes(PrefixId{2});
  ASSERT_EQ(after.size(), 1u);
  EXPECT_DOUBLE_EQ(after[0].hops, before[0].hops + 3);
  EXPECT_EQ(mp->root().nib().external_route_count(), 2u);
}

TEST_F(InterdomainFixture, SuiteAccessorsAndTransferHook) {
  EXPECT_NE(suite->region_opt(mp->root()), nullptr);
  EXPECT_EQ(suite->region_opt(mp->leaf(0)), nullptr);  // leaves have none
  EXPECT_EQ(suite->region_opt_map().size(), 1u);       // just the root here
  EXPECT_EQ(&suite->leaf_mobility_of_group(group), &suite->mobility(mp->leaf(0)));
  // The suite's UE-transfer hook is installed at construction: a reassign
  // moves mobility state automatically (exercised in test_mgmt_controller).
  EXPECT_EQ(&suite->mgmt(), mp.get());
}

TEST_F(InterdomainFixture, AgentStatsTrackDiscoveryRelay) {
  // The west leaf forwarded the root's discovery frames upward during
  // bootstrap (its border port faces east).
  const reca::AgentStats& stats = mp->leaf(0).reca().stats();
  EXPECT_GT(stats.discovery_down, 0u);  // root frames descended through it
  EXPECT_GT(stats.discovery_up, 0u);    // east's frames climbed through it
}

}  // namespace
}  // namespace softmow
