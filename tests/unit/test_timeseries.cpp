// TimeSeriesRecorder: boundary-grid sampling, ring wraparound, lazy series
// resolution, histogram-quantile tracking, and exporter integration.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace softmow::obs {
namespace {

constexpr std::int64_t kMinuteNs = 60'000'000'000;

TimeSeriesRecorder::Options minute_grid(std::size_t capacity) {
  TimeSeriesRecorder::Options opts;
  opts.interval = sim::Duration::minutes(1.0);
  opts.capacity = capacity;
  return opts;
}

TEST(TimeSeries, SamplesOncePerBoundary) {
  MetricsRegistry reg;
  Counter* c = reg.counter("replay_bearers_requested_total");
  TimeSeriesRecorder rec(minute_grid(16), &reg);
  rec.track_counter("replay_bearers_requested_total");

  c->inc(5);
  // Two samples inside the same minute: only the first records a point.
  EXPECT_TRUE(rec.sample(sim::TimePoint::at(sim::Duration::minutes(1.0))));
  c->inc(100);
  EXPECT_FALSE(rec.sample(sim::TimePoint::at(sim::Duration::seconds(90.0))));
  EXPECT_TRUE(rec.sample(sim::TimePoint::at(sim::Duration::minutes(2.0))));

  auto series = rec.snapshot();
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), 2u);
  EXPECT_EQ(series[0].points[0].at_ns, kMinuteNs);
  EXPECT_DOUBLE_EQ(series[0].points[0].value, 5.0);
  EXPECT_EQ(series[0].points[1].at_ns, 2 * kMinuteNs);
  EXPECT_DOUBLE_EQ(series[0].points[1].value, 105.0);
}

TEST(TimeSeries, JumpRecordsOnlyLatestBoundary) {
  MetricsRegistry reg;
  reg.counter("c")->inc(1);
  TimeSeriesRecorder rec(minute_grid(16), &reg);
  rec.track_counter("c");

  // The clock jumps straight to minute 7: no back-fill of minutes 1..6.
  EXPECT_TRUE(rec.sample(sim::TimePoint::at(sim::Duration::minutes(7.5))));
  auto series = rec.snapshot();
  ASSERT_EQ(series[0].points.size(), 1u);
  EXPECT_EQ(series[0].points[0].at_ns, 7 * kMinuteNs);
}

TEST(TimeSeries, RingWrapsEvictingOldest) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  TimeSeriesRecorder rec(minute_grid(4), &reg);
  rec.track_counter("c");

  for (int minute = 1; minute <= 6; ++minute) {
    c->inc();
    rec.sample(sim::TimePoint::at(sim::Duration::minutes(minute)));
  }

  // Capacity 4, 6 boundaries sampled: minutes 1 and 2 evicted.
  EXPECT_EQ(rec.dropped_total(), 2u);
  auto series = rec.snapshot();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].dropped, 2u);
  ASSERT_EQ(series[0].points.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(series[0].points[i].at_ns, (i + 3) * kMinuteNs);
    EXPECT_DOUBLE_EQ(series[0].points[i].value, static_cast<double>(i + 3));
  }
}

TEST(TimeSeries, LazyResolutionRecordsZeroUntilSeriesAppears) {
  MetricsRegistry reg;
  TimeSeriesRecorder rec(minute_grid(8), &reg);
  rec.track_gauge("late_gauge");

  rec.sample(sim::TimePoint::at(sim::Duration::minutes(1.0)));
  reg.gauge("late_gauge")->set(42.0);
  rec.sample(sim::TimePoint::at(sim::Duration::minutes(2.0)));

  auto series = rec.snapshot();
  ASSERT_EQ(series[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].points[0].value, 0.0);
  EXPECT_DOUBLE_EQ(series[0].points[1].value, 42.0);
}

TEST(TimeSeries, TracksHistogramQuantiles) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("lat_us", {10.0, 100.0, 1000.0});
  TimeSeriesRecorder rec(minute_grid(8), &reg);
  rec.track_quantile("lat_us", 0.5);
  rec.track_quantile("lat_us", 0.95);

  for (int i = 0; i < 90; ++i) h->observe(5.0);    // bucket <= 10
  for (int i = 0; i < 10; ++i) h->observe(500.0);  // bucket <= 1000
  rec.sample(sim::TimePoint::at(sim::Duration::minutes(1.0)));

  auto series = rec.snapshot();
  ASSERT_EQ(series.size(), 2u);  // sorted by field: p50 before p95
  EXPECT_EQ(series[0].field, "p50");
  EXPECT_EQ(series[1].field, "p95");
  EXPECT_DOUBLE_EQ(series[0].points[0].value, h->quantile(0.5));
  EXPECT_DOUBLE_EQ(series[1].points[0].value, h->quantile(0.95));
  // p50 falls in the first bucket, p95 in the third.
  EXPECT_LE(series[0].points[0].value, 10.0);
  EXPECT_GT(series[1].points[0].value, 100.0);
}

TEST(TimeSeries, RetrackingIsANoOpAndClearKeepsSeries) {
  MetricsRegistry reg;
  reg.counter("c")->inc(3);
  TimeSeriesRecorder rec(minute_grid(4), &reg);
  rec.track_counter("c");
  rec.track_counter("c");  // duplicate (name, labels, field)
  EXPECT_EQ(rec.tracked_count(), 1u);

  rec.sample(sim::TimePoint::at(sim::Duration::minutes(1.0)));
  rec.clear_points();
  EXPECT_EQ(rec.tracked_count(), 1u);
  EXPECT_EQ(rec.snapshot()[0].points.size(), 0u);
  // The boundary cursor resets too: minute 1 records again.
  EXPECT_TRUE(rec.sample(sim::TimePoint::at(sim::Duration::minutes(1.0))));
}

TEST(TimeSeries, QuantileFieldTags) {
  EXPECT_EQ(quantile_field(0.5), "p50");
  EXPECT_EQ(quantile_field(0.95), "p95");
  EXPECT_EQ(quantile_field(0.99), "p99");
  EXPECT_EQ(quantile_field(0.999), "p99.9");
}

TEST(HistogramQuantile, InterpolatesFromBucketCounts) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h", {10.0, 20.0});
  EXPECT_DOUBLE_EQ(h->quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 10; ++i) h->observe(5.0);
  for (int i = 0; i < 10; ++i) h->observe(15.0);
  // Median sits at the first bucket's upper bound; p75 mid-second-bucket.
  EXPECT_DOUBLE_EQ(h->quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.75), 15.0);
  // Overflow observations clamp to the last finite bound.
  h->observe(1e9);
  EXPECT_DOUBLE_EQ(h->quantile(0.999), 20.0);
}

TEST(TimeSeries, ExportsIntoJsonAndCsv) {
  MetricsRegistry reg;
  Counter* c = reg.counter("replay_bearers_requested_total");
  TimeSeriesRecorder rec(minute_grid(8), &reg);
  rec.track_counter("replay_bearers_requested_total");
  c->inc(7);
  rec.sample(sim::TimePoint::at(sim::Duration::minutes(1.0)));

  auto doc = JsonValue::parse(to_json(reg, nullptr, &rec));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->find("schema")->as_string(), "softmow.obs.v3");
  const JsonValue* ts = doc->find("timeseries");
  ASSERT_NE(ts, nullptr);
  ASSERT_EQ(ts->size(), 1u);
  EXPECT_EQ(ts->at(0).find("name")->as_string(), "replay_bearers_requested_total");
  EXPECT_EQ(ts->at(0).find("field")->as_string(), "value");
  ASSERT_EQ(ts->at(0).find("points")->size(), 1u);
  EXPECT_EQ(ts->at(0).find("points")->at(0).at(0).as_uint(),
            static_cast<std::uint64_t>(kMinuteNs));
  EXPECT_DOUBLE_EQ(ts->at(0).find("points")->at(0).at(1).as_number(), 7.0);

  const std::string csv = to_csv(reg, &rec);
  EXPECT_NE(csv.find("replay_bearers_requested_total,,timeseries,value@60000000000,7"),
            std::string::npos);
}

}  // namespace
}  // namespace softmow::obs
