#include <gtest/gtest.h>

#include "nos/path_impl.h"

namespace softmow::nos {
namespace {

/// Captures FlowMods per switch instead of programming anything.
class RecordingBus : public DeviceBus {
 public:
  Result<void> send(SwitchId sw, const southbound::Message& msg) override {
    if (fail_on.valid() && sw == fail_on)
      return Error{ErrorCode::kUnavailable, "injected failure"};
    if (const auto* mod = std::get_if<southbound::FlowMod>(&msg)) mods.push_back(*mod);
    return Ok();
  }

  [[nodiscard]] std::vector<southbound::FlowMod> mods_for(SwitchId sw) const {
    std::vector<southbound::FlowMod> out;
    for (const auto& m : mods)
      if (m.sw == sw) out.push_back(m);
    return out;
  }

  std::vector<southbound::FlowMod> mods;
  SwitchId fail_on;
};

ComputedRoute three_hop_route() {
  // access(1: in 1, out 2) -> core(2: in 1, out 2) -> border(3: in 1, out 8)
  ComputedRoute route;
  route.hops = {RouteHop{SwitchId{1}, PortId{1}, PortId{2}},
                RouteHop{SwitchId{2}, PortId{1}, PortId{2}},
                RouteHop{SwitchId{3}, PortId{1}, PortId{8}}};
  route.source = Endpoint{SwitchId{1}, PortId{1}};
  route.exit = Endpoint{SwitchId{3}, PortId{8}};
  return route;
}

dataplane::Match ue_classifier(std::uint64_t ue = 7) {
  dataplane::Match m;
  m.ue = UeId{ue};
  return m;
}

bool has_action(const southbound::FlowMod& mod, dataplane::ActionType type) {
  for (const auto& a : mod.rule.actions)
    if (a.type == type) return true;
  return false;
}

TEST(PathImplementer, OwnPathRules) {
  RecordingBus bus;
  PathImplementer paths(&bus, 1, 1);
  auto id = paths.setup(three_hop_route(), ue_classifier());
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(bus.mods.size(), 3u);

  // First switch: classify + push + output; match pins the in-port.
  const auto& first = bus.mods[0];
  EXPECT_EQ(first.sw, SwitchId{1});
  EXPECT_EQ(first.rule.match.ue, UeId{7});
  EXPECT_EQ(first.rule.match.in_port, PortId{1});
  EXPECT_TRUE(has_action(first, dataplane::ActionType::kPushLabel));

  // Transit: match on (label, in-port) only.
  const auto& mid = bus.mods[1];
  EXPECT_TRUE(mid.rule.match.label.has_value());
  EXPECT_FALSE(mid.rule.match.ue.has_value());
  EXPECT_FALSE(has_action(mid, dataplane::ActionType::kPushLabel));

  // Exit: pop before output (pop_at_exit default).
  const auto& last = bus.mods[2];
  EXPECT_TRUE(has_action(last, dataplane::ActionType::kPopLabel));
}

TEST(PathImplementer, OuterSwapTranslationRules) {
  // RecA translation of a parent transit rule: pop outer at ingress (swap to
  // local), push outer back at egress (swap back).
  RecordingBus bus;
  PathImplementer paths(&bus, 2, 1);
  dataplane::Match classifier;
  classifier.label = 900;
  PathSetupOptions options;
  options.outer_pop = true;
  options.outer_push = Label{900, 2};
  ASSERT_TRUE(paths.setup(three_hop_route(), classifier, options).ok());

  EXPECT_TRUE(has_action(bus.mods[0], dataplane::ActionType::kSwapLabel));
  EXPECT_FALSE(has_action(bus.mods[0], dataplane::ActionType::kPushLabel));
  // Exit swaps the local label back to the outer one: never two labels.
  EXPECT_TRUE(has_action(bus.mods[2], dataplane::ActionType::kSwapLabel));
  EXPECT_FALSE(has_action(bus.mods[2], dataplane::ActionType::kPopLabel));
}

TEST(PathImplementer, StackingTranslationRules) {
  RecordingBus bus;
  PathImplementer paths(&bus, 3, 1);
  PathSetupOptions options;
  options.push_under = {Label{800, 3}, Label{801, 2}};
  options.extra_pops_at_exit = 0;
  ASSERT_TRUE(paths.setup(three_hop_route(), ue_classifier(), options).ok());
  // First switch pushes the two outer labels then the local one: 3 pushes.
  int pushes = 0;
  for (const auto& a : bus.mods[0].rule.actions)
    pushes += a.type == dataplane::ActionType::kPushLabel ? 1 : 0;
  EXPECT_EQ(pushes, 3);
}

TEST(PathImplementer, SingleSwitchPathAvoidsLocalLabel) {
  RecordingBus bus;
  PathImplementer paths(&bus, 1, 1);
  ComputedRoute route;
  route.hops = {RouteHop{SwitchId{1}, PortId{1}, PortId{8}}};
  route.source = Endpoint{SwitchId{1}, PortId{1}};
  route.exit = Endpoint{SwitchId{1}, PortId{8}};
  ASSERT_TRUE(paths.setup(route, ue_classifier()).ok());
  ASSERT_EQ(bus.mods.size(), 1u);
  EXPECT_FALSE(has_action(bus.mods[0], dataplane::ActionType::kPushLabel));
  EXPECT_FALSE(has_action(bus.mods[0], dataplane::ActionType::kPopLabel));
}

TEST(PathImplementer, EmptyRouteRejected) {
  RecordingBus bus;
  PathImplementer paths(&bus, 1, 1);
  ComputedRoute route;
  EXPECT_EQ(paths.setup(route, ue_classifier()).code(), ErrorCode::kInvalidArgument);
}

TEST(PathImplementer, RollbackOnInstallFailure) {
  RecordingBus bus;
  bus.fail_on = SwitchId{3};
  PathImplementer paths(&bus, 1, 1);
  auto id = paths.setup(three_hop_route(), ue_classifier());
  EXPECT_FALSE(id.ok());
  // The two already-installed rules were removed again.
  int removes = 0;
  for (const auto& m : bus.mods)
    removes += m.op == southbound::FlowMod::Op::kRemoveByCookie ? 1 : 0;
  EXPECT_EQ(removes, 2);
  EXPECT_EQ(paths.active_count(), 0u);
}

TEST(PathImplementer, DeactivateRemovesEveryRule) {
  RecordingBus bus;
  PathImplementer paths(&bus, 1, 1);
  auto id = paths.setup(three_hop_route(), ue_classifier());
  ASSERT_TRUE(id.ok());
  bus.mods.clear();
  ASSERT_TRUE(paths.deactivate(*id).ok());
  EXPECT_EQ(bus.mods.size(), 3u);
  for (const auto& m : bus.mods)
    EXPECT_EQ(m.op, southbound::FlowMod::Op::kRemoveByCookie);
  EXPECT_EQ(paths.active_count(), 0u);
  // Idempotent.
  ASSERT_TRUE(paths.deactivate(*id).ok());
  EXPECT_EQ(bus.mods.size(), 3u);
}

TEST(PathImplementer, ReactivateReinstalls) {
  RecordingBus bus;
  PathImplementer paths(&bus, 1, 1);
  auto id = paths.setup(three_hop_route(), ue_classifier());
  ASSERT_TRUE(paths.deactivate(*id).ok());
  bus.mods.clear();
  ASSERT_TRUE(paths.reactivate(*id).ok());
  EXPECT_EQ(bus.mods.size(), 3u);
  EXPECT_EQ(paths.active_count(), 1u);
}

TEST(PathImplementerTagGc, DrainingLastBearerReturnsRuleCountToBaseline) {
  // Tag-space GC (slicing encapsulation): two bearers share one tag
  // aggregate; draining both must remove the shared transit rules AND hand
  // the tag's aggregate ids back to the allocator.
  RecordingBus bus;
  dataplane::TagAllocator alloc;
  PathImplementer paths(&bus, 1, 1);
  paths.set_tag_allocator(&alloc);

  ComputedRoute route = three_hop_route();
  std::uint32_t tag = alloc.tag_for(SliceId{2}, 3, route.source, route.exit);
  PathSetupOptions options;
  options.shared_tag = Label{tag, 1};

  auto a = paths.setup(route, ue_classifier(1), options);
  auto b = paths.setup(route, ue_classifier(2), options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(paths.aggregates().size(), 1u);
  EXPECT_EQ(alloc.ingress_aggregates(), 1u);
  EXPECT_EQ(alloc.egress_aggregates(), 1u);

  // Net rule count across the data plane: adds minus removes must return to
  // zero once the last bearer of the aggregate drains.
  auto net_rules = [&bus] {
    long net = 0;
    for (const auto& m : bus.mods)
      net += m.op == southbound::FlowMod::Op::kAdd ? 1 : -1;
    return net;
  };
  ASSERT_GT(net_rules(), 0);

  ASSERT_TRUE(paths.deactivate(*a).ok());
  EXPECT_EQ(paths.aggregates().size(), 1u) << "second bearer still references the tag";
  EXPECT_EQ(alloc.ids_recycled(), 0u);

  ASSERT_TRUE(paths.deactivate(*b).ok());
  EXPECT_EQ(paths.aggregates().size(), 0u);
  EXPECT_EQ(net_rules(), 0) << "every installed rule must have been removed";
  EXPECT_EQ(alloc.ingress_aggregates(), 0u);
  EXPECT_EQ(alloc.egress_aggregates(), 0u);
  EXPECT_EQ(alloc.ids_recycled(), 2u);
}

TEST(PathImplementerTagGc, ReactivationRederivesTagThroughAllocator) {
  // While a tagged path sits deactivated its aggregate ids can drain and be
  // recycled to other endpoints; reactivate() must re-derive the tag so the
  // path never aliases a foreign aggregate's transit rules.
  RecordingBus bus;
  dataplane::TagAllocator alloc;
  PathImplementer paths(&bus, 1, 1);
  paths.set_tag_allocator(&alloc);

  ComputedRoute route = three_hop_route();
  std::uint32_t tag = alloc.tag_for(SliceId{2}, 3, route.source, route.exit);
  PathSetupOptions options;
  options.shared_tag = Label{tag, 1};
  auto id = paths.setup(route, ue_classifier(1), options);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(paths.deactivate(*id).ok());  // ids drain and recycle

  // A different endpoint pair claims the recycled ingress/egress ids.
  ComputedRoute other;
  other.hops = {RouteHop{SwitchId{5}, PortId{1}, PortId{2}},
                RouteHop{SwitchId{6}, PortId{1}, PortId{9}}};
  other.source = Endpoint{SwitchId{5}, PortId{1}};
  other.exit = Endpoint{SwitchId{6}, PortId{9}};
  std::uint32_t squatter = alloc.tag_for(SliceId{2}, 3, other.source, other.exit);
  PathSetupOptions squat_options;
  squat_options.shared_tag = Label{squatter, 1};
  ASSERT_TRUE(paths.setup(other, ue_classifier(9), squat_options).ok());
  EXPECT_EQ(squatter, tag) << "recycling must re-issue the drained ids";

  ASSERT_TRUE(paths.reactivate(*id).ok());
  const InstalledPath* p = paths.path(*id);
  ASSERT_NE(p, nullptr);
  EXPECT_NE(p->label.value, squatter) << "reactivated path must not alias the squatter";
  auto decoded = dataplane::decode_tag(p->label.value);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->slice.value, 2u);
  EXPECT_EQ(decoded->clause, 3u);
  EXPECT_EQ(paths.aggregates().size(), 2u);
}

TEST(PathImplementer, LabelsAreUniquePerPathAndTagged) {
  RecordingBus bus;
  PathImplementer paths(&bus, /*controller_tag=*/5, /*level=*/2);
  auto a = paths.setup(three_hop_route(), ue_classifier(1));
  auto b = paths.setup(three_hop_route(), ue_classifier(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const InstalledPath* pa = paths.path(*a);
  const InstalledPath* pb = paths.path(*b);
  EXPECT_NE(pa->label.value, pb->label.value);
  EXPECT_EQ(pa->label.value >> 20, 5u);  // controller tag in the high bits
  EXPECT_EQ(pa->label.owner_level, 2);
}

TEST(PathImplementer, VersionStampedAtIngress) {
  RecordingBus bus;
  PathImplementer paths(&bus, 1, 1);
  PathSetupOptions options;
  options.version = 7;
  ASSERT_TRUE(paths.setup(three_hop_route(), ue_classifier(), options).ok());
  EXPECT_TRUE(has_action(bus.mods[0], dataplane::ActionType::kSetVersion));
}

TEST(RouteIntact, DetectsMissingAndDownPieces) {
  Nib nib;
  for (std::uint64_t s : {1, 2, 3}) {
    SwitchRecord rec;
    rec.id = SwitchId{s};
    southbound::PortDesc p1, p2;
    p1.port = PortId{1};
    p2.port = s == 3 ? PortId{8} : PortId{2};
    rec.ports[p1.port] = p1;
    rec.ports[p2.port] = p2;
    nib.upsert_switch(rec);
  }
  nib.upsert_link({SwitchId{1}, PortId{2}}, {SwitchId{2}, PortId{1}}, {});
  nib.upsert_link({SwitchId{2}, PortId{2}}, {SwitchId{3}, PortId{1}}, {});
  ComputedRoute route = three_hop_route();
  EXPECT_TRUE(route_intact(nib, route));
  nib.set_links_at_up({SwitchId{2}, PortId{2}}, false);
  EXPECT_FALSE(route_intact(nib, route));
  nib.set_links_at_up({SwitchId{2}, PortId{2}}, true);
  EXPECT_TRUE(route_intact(nib, route));
  ASSERT_TRUE(nib.remove_switch(SwitchId{2}).ok());
  EXPECT_FALSE(route_intact(nib, route));
}

}  // namespace
}  // namespace softmow::nos
