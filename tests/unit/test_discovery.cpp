#include <gtest/gtest.h>

#include "nos/discovery.h"

namespace softmow::nos {
namespace {

/// Records outgoing messages.
class RecordingBus : public DeviceBus {
 public:
  Result<void> send(SwitchId sw, const southbound::Message& msg) override {
    sent.emplace_back(sw, msg);
    return Ok();
  }
  std::vector<std::pair<SwitchId, southbound::Message>> sent;
};

southbound::FeaturesReply reply_for(SwitchId sw, std::initializer_list<std::uint64_t> ports,
                                    bool gswitch = false) {
  southbound::FeaturesReply r;
  r.sw = sw;
  r.is_gswitch = gswitch;
  for (std::uint64_t p : ports) {
    southbound::PortDesc d;
    d.port = PortId{p};
    d.peer = dataplane::PeerKind::kSwitch;
    r.ports.push_back(d);
  }
  return r;
}

class DiscoveryTest : public ::testing::Test {
 protected:
  Nib nib;
  RecordingBus bus;
  DiscoveryModule discovery{ControllerId{1}, &nib, &bus};
};

TEST_F(DiscoveryTest, HelloTriggersFeaturesRequest) {
  discovery.on_hello(SwitchId{4});
  ASSERT_EQ(bus.sent.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<southbound::FeaturesRequest>(bus.sent[0].second));
  EXPECT_FALSE(discovery.features_complete());
  discovery.on_features_reply(reply_for(SwitchId{4}, {1, 2}));
  EXPECT_TRUE(discovery.features_complete());
  EXPECT_EQ(nib.sw(SwitchId{4})->ports.size(), 2u);
}

TEST_F(DiscoveryTest, LinkDiscoverySendsOneFramePerSwitchPort) {
  discovery.on_features_reply(reply_for(SwitchId{1}, {1, 2, 3}));
  auto mixed = reply_for(SwitchId{2}, {1});
  southbound::PortDesc radio;
  radio.port = PortId{9};
  radio.peer = dataplane::PeerKind::kBsGroup;  // not switch-facing: no frame
  mixed.ports.push_back(radio);
  discovery.on_features_reply(mixed);
  bus.sent.clear();

  discovery.run_link_discovery();
  EXPECT_EQ(bus.sent.size(), 4u);  // 3 + 1 switch-facing ports
  for (const auto& [sw, msg] : bus.sent) {
    const auto& out = std::get<southbound::PacketOut>(msg);
    const auto& payload = std::get<southbound::DiscoveryPayload>(out.body);
    ASSERT_EQ(payload.stack.size(), 1u);
    EXPECT_EQ(payload.stack[0].controller, ControllerId{1});
    EXPECT_EQ(payload.stack[0].sw, sw);
    EXPECT_EQ(payload.stack[0].port, out.port);
  }
  EXPECT_EQ(discovery.stats().frames_sent, 4u);
}

TEST_F(DiscoveryTest, OwnFrameYieldsLink) {
  discovery.on_features_reply(reply_for(SwitchId{1}, {1}));
  discovery.on_features_reply(reply_for(SwitchId{2}, {1}));
  southbound::DiscoveryPayload payload;
  payload.stack.push_back(
      southbound::DiscoveryStackEntry{ControllerId{1}, SwitchId{1}, PortId{1}});
  payload.meta.latency_us = 5000;
  payload.meta.bandwidth_kbps = 1e6;
  payload.meta.filled = true;

  auto verdict =
      discovery.on_discovery_packet_in(Endpoint{SwitchId{2}, PortId{1}}, payload);
  EXPECT_EQ(verdict, DiscoveryVerdict::kConsumed);
  ASSERT_EQ(nib.links().size(), 1u);
  EXPECT_DOUBLE_EQ(nib.links()[0].metrics.latency_us, 5000);
  EXPECT_EQ(discovery.stats().links_discovered, 1u);
}

TEST_F(DiscoveryTest, ForeignFrameWithRemainingStackIsForwarded) {
  southbound::DiscoveryPayload payload;
  payload.stack.push_back(
      southbound::DiscoveryStackEntry{ControllerId{99}, SwitchId{50}, PortId{1}});
  payload.stack.push_back(
      southbound::DiscoveryStackEntry{ControllerId{42}, SwitchId{60}, PortId{2}});
  auto verdict =
      discovery.on_discovery_packet_in(Endpoint{SwitchId{2}, PortId{1}}, payload);
  EXPECT_EQ(verdict, DiscoveryVerdict::kForward);
  // The top entry (not ours) was popped; the rest travels upward (§4.1.2).
  ASSERT_EQ(payload.stack.size(), 1u);
  EXPECT_EQ(payload.stack[0].controller, ControllerId{99});
}

TEST_F(DiscoveryTest, ForeignFrameWithEmptyStackIsDropped) {
  southbound::DiscoveryPayload payload;
  payload.stack.push_back(
      southbound::DiscoveryStackEntry{ControllerId{42}, SwitchId{60}, PortId{2}});
  auto verdict =
      discovery.on_discovery_packet_in(Endpoint{SwitchId{2}, PortId{1}}, payload);
  EXPECT_EQ(verdict, DiscoveryVerdict::kDrop);
  EXPECT_EQ(discovery.stats().frames_dropped, 1u);
}

TEST_F(DiscoveryTest, EmptyStackFrameIsDropped) {
  southbound::DiscoveryPayload payload;
  EXPECT_EQ(discovery.on_discovery_packet_in(Endpoint{SwitchId{2}, PortId{1}}, payload),
            DiscoveryVerdict::kDrop);
}

TEST_F(DiscoveryTest, RediscoveryIsIdempotent) {
  discovery.on_features_reply(reply_for(SwitchId{1}, {1}));
  discovery.on_features_reply(reply_for(SwitchId{2}, {1}));
  southbound::DiscoveryPayload payload;
  payload.stack.push_back(
      southbound::DiscoveryStackEntry{ControllerId{1}, SwitchId{1}, PortId{1}});
  for (int round = 0; round < 3; ++round) {
    auto copy = payload;
    (void)discovery.on_discovery_packet_in(Endpoint{SwitchId{2}, PortId{1}}, copy);
  }
  EXPECT_EQ(nib.links().size(), 1u);
}

TEST_F(DiscoveryTest, FeaturesReplyPrunesLinksOnRemovedAndDownPorts) {
  discovery.on_features_reply(reply_for(SwitchId{1}, {1, 2}));
  discovery.on_features_reply(reply_for(SwitchId{2}, {1}));
  nib.upsert_link({SwitchId{1}, PortId{1}}, {SwitchId{2}, PortId{1}}, {});
  nib.upsert_link({SwitchId{1}, PortId{2}}, {SwitchId{2}, PortId{1}}, {});

  // Re-announce switch 1 without port 2 and with port 1 down.
  southbound::FeaturesReply shrunk;
  shrunk.sw = SwitchId{1};
  southbound::PortDesc p1;
  p1.port = PortId{1};
  p1.up = false;
  p1.peer = dataplane::PeerKind::kSwitch;
  shrunk.ports.push_back(p1);
  discovery.on_features_reply(shrunk);

  ASSERT_EQ(nib.links().size(), 1u);  // the port-2 link is gone entirely
  EXPECT_FALSE(nib.links()[0].up);    // the port-1 link is marked down
}

TEST_F(DiscoveryTest, GSwitchVfabricStored) {
  auto reply = reply_for(SwitchId{7}, {1, 2}, /*gswitch=*/true);
  reply.vfabric.push_back(southbound::VFabricEntry{PortId{1}, PortId{2}, {}});
  discovery.on_features_reply(reply);
  ASSERT_NE(nib.sw(SwitchId{7}), nullptr);
  EXPECT_TRUE(nib.sw(SwitchId{7})->is_gswitch);
  EXPECT_EQ(nib.sw(SwitchId{7})->vfabric.size(), 1u);
}

}  // namespace
}  // namespace softmow::nos
