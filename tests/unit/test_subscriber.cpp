// HSS / PCRF operator applications (§3.3) and the attach/bearer front desk.
#include <gtest/gtest.h>

#include "apps/subscriber.h"
#include "softmow/softmow.h"

namespace softmow::apps {
namespace {

TEST(Hss, ProvisionLookupDeprovision) {
  HssApp hss;
  hss.provision({UeId{1}, SubscriberClass::kPremium, "imsi-001"});
  ASSERT_NE(hss.lookup(UeId{1}), nullptr);
  EXPECT_EQ(hss.lookup(UeId{1})->tier, SubscriberClass::kPremium);
  EXPECT_EQ(hss.subscriber_count(), 1u);
  EXPECT_TRUE(hss.deprovision(UeId{1}).ok());
  EXPECT_EQ(hss.lookup(UeId{1}), nullptr);
  EXPECT_EQ(hss.deprovision(UeId{1}).code(), ErrorCode::kNotFound);
}

TEST(Hss, AttachAuthorization) {
  HssApp hss;
  hss.provision({UeId{1}, SubscriberClass::kBasic, "a"});
  hss.provision({UeId{2}, SubscriberClass::kBlocked, "b"});
  auto ok = hss.authorize_attach(UeId{1});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, SubscriberClass::kBasic);
  EXPECT_EQ(hss.authorize_attach(UeId{2}).code(), ErrorCode::kPermission);
  EXPECT_EQ(hss.authorize_attach(UeId{3}).code(), ErrorCode::kPermission);
  EXPECT_EQ(hss.rejected_attaches(), 2u);
}

TEST(Pcrf, DefaultRulesEncodeOperatorPolicy) {
  PcrfApp pcrf;
  auto voip = pcrf.policy_for(SubscriberClass::kBasic, ApplicationClass::kVoip);
  ASSERT_TRUE(voip.ok());
  EXPECT_EQ(voip->objective, Metric::kLatency);
  ASSERT_TRUE(voip->qos.max_latency_us.has_value());

  auto premium_video = pcrf.policy_for(SubscriberClass::kPremium, ApplicationClass::kVideo);
  ASSERT_TRUE(premium_video.ok());
  ASSERT_EQ(premium_video->service.chain.size(), 1u);
  EXPECT_EQ(premium_video->service.chain[0], dataplane::MiddleboxType::kVideoTranscoder);
  EXPECT_GT(premium_video->qos.min_bandwidth_kbps, 0);

  auto iot = pcrf.policy_for(SubscriberClass::kIot, ApplicationClass::kDefault);
  ASSERT_TRUE(iot.ok());
  ASSERT_EQ(iot->service.chain.size(), 1u);
  EXPECT_EQ(iot->service.chain[0], dataplane::MiddleboxType::kFirewall);

  // Unconfigured valid pair falls back to best-effort.
  auto fallback = pcrf.policy_for(SubscriberClass::kPremium, ApplicationClass::kBulk);
  ASSERT_TRUE(fallback.ok());
  EXPECT_TRUE(fallback->service.empty());
  EXPECT_FALSE(fallback->qos.max_latency_us.has_value());
}

TEST(Pcrf, BlockedSubscribersGetNoPolicy) {
  PcrfApp pcrf;
  auto blocked = pcrf.policy_for(SubscriberClass::kBlocked, ApplicationClass::kVoip);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.code(), ErrorCode::kPermission);

  // make_request refuses too: a blocked subscriber must never yield a
  // bearer request carrying the best-effort default policy.
  SubscriberProfile profile{UeId{9}, SubscriberClass::kBlocked, "x"};
  auto request = pcrf.make_request(profile, BsId{1}, PrefixId{2}, ApplicationClass::kDefault);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.code(), ErrorCode::kPermission);
}

TEST(Pcrf, UnknownEnumValuesAreInvalidArguments) {
  PcrfApp pcrf;
  auto bad_app = pcrf.policy_for(SubscriberClass::kBasic, static_cast<ApplicationClass>(200));
  ASSERT_FALSE(bad_app.ok());
  EXPECT_EQ(bad_app.code(), ErrorCode::kInvalidArgument);

  auto bad_tier = pcrf.policy_for(static_cast<SubscriberClass>(77), ApplicationClass::kVoip);
  ASSERT_FALSE(bad_tier.ok());
  EXPECT_EQ(bad_tier.code(), ErrorCode::kInvalidArgument);

  SubscriberProfile profile{UeId{9}, SubscriberClass::kBasic, "x"};
  auto request =
      pcrf.make_request(profile, BsId{1}, PrefixId{2}, static_cast<ApplicationClass>(200));
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.code(), ErrorCode::kInvalidArgument);
}

TEST(Pcrf, RuleOverrideAndRequestSynthesis) {
  PcrfApp pcrf;
  PcrfApp::Policy strict;
  strict.qos.max_hops = 9;
  pcrf.set_rule(SubscriberClass::kBasic, ApplicationClass::kBulk, strict);
  SubscriberProfile profile{UeId{7}, SubscriberClass::kBasic, "x"};
  auto request = pcrf.make_request(profile, BsId{3}, PrefixId{5}, ApplicationClass::kBulk);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->ue, UeId{7});
  EXPECT_EQ(request->bs, BsId{3});
  EXPECT_EQ(request->dst_prefix, PrefixId{5});
  ASSERT_TRUE(request->qos.max_hops.has_value());
  EXPECT_DOUBLE_EQ(*request->qos.max_hops, 9);
}

TEST(Pcrf, ChargingMetersPerSubscriber) {
  PcrfApp pcrf;
  pcrf.meter(UeId{1}, ApplicationClass::kVideo, 1000);
  pcrf.meter(UeId{1}, ApplicationClass::kBulk, 500);
  pcrf.meter(UeId{2}, ApplicationClass::kVoip, 10);
  EXPECT_EQ(pcrf.usage_bytes(UeId{1}), 1500u);
  EXPECT_EQ(pcrf.usage_bytes(UeId{2}), 10u);
  EXPECT_EQ(pcrf.usage_bytes(UeId{3}), 0u);
  EXPECT_EQ(pcrf.records().size(), 3u);
}

TEST(SubscriberFrontendTest, EndToEndAttachAndPolicyBearer) {
  auto scenario = topo::build_scenario(topo::small_scenario_params(6));
  auto& mp = *scenario->mgmt;
  BsGroupId group = scenario->partition.group_regions[0].front();
  BsId bs = scenario->net.bs_group(group)->members.front();
  auto& mobility = scenario->apps->mobility(*mp.leaf_of_group(group));

  HssApp hss;
  PcrfApp pcrf;
  SubscriberFrontend frontend(&hss, &pcrf, &mobility);

  // Unprovisioned subscribers are turned away before touching mobility.
  EXPECT_EQ(frontend.attach(UeId{1}, bs).code(), ErrorCode::kPermission);
  hss.provision({UeId{1}, SubscriberClass::kBasic, "imsi-1"});
  auto tier = frontend.attach(UeId{1}, bs);
  ASSERT_TRUE(tier.ok());

  // Best-effort bulk bearer via policy lookup, then verify delivery.
  auto bearer = frontend.open_bearer(UeId{1}, PrefixId{3}, ApplicationClass::kBulk);
  ASSERT_TRUE(bearer.ok()) << bearer.error().message;
  Packet pkt;
  pkt.ue = UeId{1};
  pkt.dst_prefix = PrefixId{3};
  auto report = scenario->net.inject_uplink(pkt, bs);
  EXPECT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal);
  pcrf.meter(UeId{1}, ApplicationClass::kBulk, report.packet.wire_bytes());
  EXPECT_GT(pcrf.usage_bytes(UeId{1}), 0u);

  // Bearer for a subscriber that never attached fails cleanly.
  hss.provision({UeId{2}, SubscriberClass::kBasic, "imsi-2"});
  EXPECT_EQ(frontend.open_bearer(UeId{2}, PrefixId{3}, ApplicationClass::kBulk).code(),
            ErrorCode::kNotFound);
}

TEST(MobilityFastPath, SameGroupHandoverChangesNoPaths) {
  auto scenario = topo::build_scenario(topo::small_scenario_params(6));
  auto& mp = *scenario->mgmt;
  // A group with at least two base stations.
  BsGroupId group;
  for (BsGroupId g : scenario->trace.groups) {
    if (scenario->net.bs_group(g)->members.size() >= 2) {
      group = g;
      break;
    }
  }
  if (!group.valid()) GTEST_SKIP() << "no multi-BS group in this seed";
  const auto& members = scenario->net.bs_group(group)->members;
  auto& mobility = scenario->apps->mobility(*mp.leaf_of_group(group));
  ASSERT_TRUE(mobility.ue_attach(UeId{1}, members[0]).ok());
  apps::BearerRequest request;
  request.ue = UeId{1};
  request.bs = members[0];
  request.dst_prefix = PrefixId{3};
  ASSERT_TRUE(mobility.request_bearer(request).ok());
  std::size_t rules_before = scenario->net.total_rules();

  ASSERT_TRUE(mobility.handover(UeId{1}, members[1]).ok());
  EXPECT_EQ(mobility.stats().intra_group_handovers, 1u);
  EXPECT_EQ(mobility.stats().intra_region_handovers, 0u);
  EXPECT_EQ(scenario->net.total_rules(), rules_before);  // fast path: no churn
  EXPECT_EQ(mobility.ue(UeId{1})->bs, members[1]);
}

}  // namespace
}  // namespace softmow::apps
