// Bandwidth reservation + §3.2 threshold-based vFabric updates: NIB
// bookkeeping, PathImplementer admission, and end-to-end propagation of
// shrinking available bandwidth up the hierarchy.
#include <gtest/gtest.h>

#include "softmow/softmow.h"

namespace softmow {
namespace {

using nos::Nib;

southbound::PortDesc sw_port(std::uint64_t id) {
  southbound::PortDesc d;
  d.port = PortId{id};
  d.peer = dataplane::PeerKind::kSwitch;
  return d;
}

TEST(NibReservations, ReserveReleaseCycle) {
  Nib nib;
  nib.upsert_link({SwitchId{1}, PortId{1}}, {SwitchId{2}, PortId{1}},
                  EdgeMetrics{5000, 1, 1000});
  Endpoint at{SwitchId{1}, PortId{1}};
  EXPECT_TRUE(nib.reserve_link_bandwidth(at, 600).ok());
  EXPECT_DOUBLE_EQ(nib.links()[0].metrics.bandwidth_kbps, 400);
  EXPECT_EQ(nib.reserve_link_bandwidth(at, 600).code(), ErrorCode::kExhausted);
  EXPECT_TRUE(nib.release_link_bandwidth(at, 600).ok());
  EXPECT_DOUBLE_EQ(nib.links()[0].metrics.bandwidth_kbps, 1000);
  EXPECT_EQ(nib.reserve_link_bandwidth({SwitchId{9}, PortId{1}}, 1).code(),
            ErrorCode::kNotFound);
}

TEST(NibReservations, MiddleboxUtilizationClamped) {
  Nib nib;
  southbound::GMiddleboxAnnounce mb;
  mb.gmb = MiddleboxId{1};
  mb.total_capacity_kbps = 100;
  mb.utilization = 0.9;
  nib.upsert_middlebox(mb);
  EXPECT_TRUE(nib.adjust_middlebox_utilization(MiddleboxId{1}, 0.5).ok());
  EXPECT_DOUBLE_EQ(nib.middlebox(MiddleboxId{1})->utilization, 1.0);
  EXPECT_TRUE(nib.adjust_middlebox_utilization(MiddleboxId{1}, -2.0).ok());
  EXPECT_DOUBLE_EQ(nib.middlebox(MiddleboxId{1})->utilization, 0.0);
  EXPECT_EQ(nib.adjust_middlebox_utilization(MiddleboxId{9}, 0.1).code(),
            ErrorCode::kNotFound);
}

class NullBus : public nos::DeviceBus {
 public:
  Result<void> send(SwitchId, const southbound::Message&) override { return Ok(); }
};

class PathReservationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t s : {1, 2, 3}) {
      nos::SwitchRecord rec;
      rec.id = SwitchId{s};
      rec.ports[PortId{1}] = sw_port(1);
      rec.ports[PortId{2}] = sw_port(2);
      if (s == 3) rec.ports[PortId{8}] = sw_port(8);
      nib.upsert_switch(rec);
    }
    nib.upsert_link({SwitchId{1}, PortId{2}}, {SwitchId{2}, PortId{1}},
                    EdgeMetrics{5000, 1, 1000});
    nib.upsert_link({SwitchId{2}, PortId{2}}, {SwitchId{3}, PortId{1}},
                    EdgeMetrics{5000, 1, 1000});
  }

  nos::ComputedRoute route() {
    nos::ComputedRoute r;
    r.hops = {nos::RouteHop{SwitchId{1}, PortId{1}, PortId{2}},
              nos::RouteHop{SwitchId{2}, PortId{1}, PortId{2}},
              nos::RouteHop{SwitchId{3}, PortId{1}, PortId{8}}};
    r.source = {SwitchId{1}, PortId{1}};
    r.exit = {SwitchId{3}, PortId{8}};
    return r;
  }

  double available(std::size_t index) { return nib.links()[index].metrics.bandwidth_kbps; }

  Nib nib;
  NullBus bus;
  nos::PathImplementer paths{&bus, 1, 1, &nib};
};

TEST_F(PathReservationTest, SetupReservesOnEveryCrossedLink) {
  nos::PathSetupOptions options;
  options.reserve_kbps = 300;
  dataplane::Match classifier;
  classifier.ue = UeId{1};
  auto id = paths.setup(route(), classifier, options);
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(available(0), 700);
  EXPECT_DOUBLE_EQ(available(1), 700);
  ASSERT_TRUE(paths.deactivate(*id).ok());
  EXPECT_DOUBLE_EQ(available(0), 1000);
  EXPECT_DOUBLE_EQ(available(1), 1000);
}

TEST_F(PathReservationTest, AdmissionFailureLeavesNoResidue) {
  // Thin the second link below the request.
  ASSERT_TRUE(
      nib.set_link_up({SwitchId{2}, PortId{2}}, {SwitchId{3}, PortId{1}}, true).ok());
  ASSERT_TRUE(nib.reserve_link_bandwidth({SwitchId{2}, PortId{2}}, 900).ok());
  nos::PathSetupOptions options;
  options.reserve_kbps = 300;
  dataplane::Match classifier;
  classifier.ue = UeId{1};
  auto id = paths.setup(route(), classifier, options);
  EXPECT_EQ(id.code(), ErrorCode::kExhausted);
  EXPECT_DOUBLE_EQ(available(0), 1000);  // first link's reservation rolled back
  EXPECT_EQ(paths.active_count(), 0u);
}

TEST_F(PathReservationTest, ReactivateReacquiresBandwidth) {
  nos::PathSetupOptions options;
  options.reserve_kbps = 400;
  dataplane::Match classifier;
  classifier.ue = UeId{1};
  auto id = paths.setup(route(), classifier, options);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(paths.deactivate(*id).ok());
  // Someone else grabs most of the link; reactivation must fail cleanly.
  ASSERT_TRUE(nib.reserve_link_bandwidth({SwitchId{1}, PortId{2}}, 800).ok());
  EXPECT_EQ(paths.reactivate(*id).code(), ErrorCode::kExhausted);
  EXPECT_TRUE(nib.release_link_bandwidth({SwitchId{1}, PortId{2}}, 800).ok());
  EXPECT_TRUE(paths.reactivate(*id).ok());
  EXPECT_DOUBLE_EQ(available(0), 600);
}

TEST_F(PathReservationTest, MiddleboxUtilizationFollowsReservation) {
  southbound::GMiddleboxAnnounce mb;
  mb.gmb = MiddleboxId{5};
  mb.type = dataplane::MiddleboxType::kFirewall;
  mb.total_capacity_kbps = 1000;
  mb.attached_switch = SwitchId{2};
  mb.attached_port = PortId{5};
  nib.upsert_middlebox(mb);
  auto r = route();
  r.middleboxes = {MiddleboxId{5}};
  nos::PathSetupOptions options;
  options.reserve_kbps = 250;
  dataplane::Match classifier;
  classifier.ue = UeId{1};
  auto id = paths.setup(r, classifier, options);
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(nib.middlebox(MiddleboxId{5})->utilization, 0.25);
  ASSERT_TRUE(paths.deactivate(*id).ok());
  EXPECT_DOUBLE_EQ(nib.middlebox(MiddleboxId{5})->utilization, 0.0);
}

/// End-to-end over the Figure 5 shape: a guaranteed-bit-rate bearer shrinks
/// the leaf's vFabric bandwidth, the update crosses the threshold and
/// reaches the root, and admission eventually rejects what no longer fits.
class HierarchyReservationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1 = net.add_switch();
    s2 = net.add_switch();
    s3 = net.add_switch();
    s4 = net.add_switch();
    (void)net.connect(s1, s2, sim::Duration::millis(5), 1000);  // thin west spine
    (void)net.connect(s2, s3, sim::Duration::millis(5), 1e6);
    (void)net.connect(s3, s4, sim::Duration::millis(5), 1e6);
    group_a = net.add_bs_group(s1);
    group_b = net.add_bs_group(s4);
    bs_a = net.add_base_station(group_a, {});
    net.add_base_station(group_b, {});
    egress = net.add_egress(s4);

    mgmt::HierarchySpec spec;
    spec.leaves.push_back(mgmt::RegionSpec{"west", {s1, s2}, {group_a}});
    spec.leaves.push_back(mgmt::RegionSpec{"east", {s3, s4}, {group_b}});
    spec.group_adjacency.add(group_a, group_b, 1.0);
    mp = std::make_unique<mgmt::ManagementPlane>(&net);
    mp->bootstrap(spec);
    suite = std::make_unique<apps::AppSuite>(*mp);
    provider.egress_id = egress;
    suite->originate_interdomain(provider);
  }

  struct OneRoute : apps::ExternalPathProvider {
    EgressId egress_id;
    std::vector<PrefixId> prefixes() const override { return {PrefixId{1}}; }
    std::optional<apps::ExternalCost> cost(EgressId e, PrefixId) const override {
      if (!(e == egress_id)) return std::nullopt;
      return apps::ExternalCost{10, 20000};
    }
  } provider;

  apps::BearerRequest gbr(UeId ue, double kbps) {
    apps::BearerRequest r;
    r.ue = ue;
    r.bs = bs_a;
    r.dst_prefix = PrefixId{1};
    r.qos.min_bandwidth_kbps = kbps;
    return r;
  }

  dataplane::PhysicalNetwork net;
  SwitchId s1, s2, s3, s4;
  BsGroupId group_a, group_b;
  BsId bs_a;
  EgressId egress;
  std::unique_ptr<mgmt::ManagementPlane> mp;
  std::unique_ptr<apps::AppSuite> suite;
};

TEST_F(HierarchyReservationTest, ReservationShrinksVfabricUpToTheRoot) {
  auto& west = mp->leaf(0);
  auto& mobility = suite->mobility(west);
  ASSERT_TRUE(mobility.ue_attach(UeId{1}, bs_a).ok());

  auto root_bandwidth = [&]() {
    SwitchId gs_west = west.abstraction().gswitch_id();
    const nos::SwitchRecord* rec = mp->root().nib().sw(gs_west);
    double min_bw = 1e18;
    for (const auto& e : rec->vfabric) min_bw = std::min(min_bw, e.metrics.bandwidth_kbps);
    return min_bw;
  };
  double before = root_bandwidth();
  ASSERT_LE(before, 1000);  // bottleneck is the thin west spine

  auto bearer = mobility.request_bearer(gbr(UeId{1}, 600));
  ASSERT_TRUE(bearer.ok()) << bearer.error().message;
  // The 60% drop crossed the 10% threshold: the root's copy shrank.
  EXPECT_GT(west.reca().vfabric_updates_sent(), 0u);
  EXPECT_NEAR(root_bandwidth(), before - 600, 1e-6);

  // Releasing restores the advertised bandwidth.
  ASSERT_TRUE(mobility.deactivate_bearer(UeId{1}, *bearer).ok());
  EXPECT_NEAR(root_bandwidth(), before, 1e-6);
}

TEST_F(HierarchyReservationTest, AdmissionRejectsWhatNoLongerFits) {
  auto& mobility = suite->mobility(mp->leaf(0));
  ASSERT_TRUE(mobility.ue_attach(UeId{1}, bs_a).ok());
  ASSERT_TRUE(mobility.ue_attach(UeId{2}, bs_a).ok());
  ASSERT_TRUE(mobility.request_bearer(gbr(UeId{1}, 700)).ok());
  // Only ~300 kbps left on the west spine: a second 700 kbps bearer cannot
  // be admitted anywhere (the spine is the only way out of group A).
  auto second = mobility.request_bearer(gbr(UeId{2}, 700));
  EXPECT_FALSE(second.ok());
}

}  // namespace
}  // namespace softmow
