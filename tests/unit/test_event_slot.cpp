// Event arena coverage: SmallFn move/destroy semantics (inline and boxed),
// EventPool recycle/reset behavior, and the headline steady-state property —
// an engine replaying a self-sustaining event pattern allocates a bounded
// number of slots up front and then recycles forever.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>

#include "sim/event_slot.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace softmow::sim {
namespace {

TEST(SmallFn, InlineLambdaInvokes) {
  int hits = 0;
  SmallFn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, MoveTransfersOwnership) {
  int hits = 0;
  SmallFn a([&hits] { ++hits; });
  SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  SmallFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, CapturedStateDestroyedExactlyOnce) {
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  {
    SmallFn fn([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());  // capture keeps it alive
    SmallFn moved(std::move(fn));
    EXPECT_FALSE(watch.expired());  // relocation must not double-free
    moved();
  }
  EXPECT_TRUE(watch.expired());  // destroyed with the callable
}

TEST(SmallFn, OversizedCaptureBoxesAndStillWorks) {
  // > kInlineBytes of capture forces the heap fallback path.
  std::array<std::uint64_t, 32> big{};
  big[0] = 7;
  big[31] = 11;
  std::uint64_t out = 0;
  SmallFn fn([big, &out] { out = big[0] + big[31]; });
  SmallFn moved(std::move(fn));
  moved();
  EXPECT_EQ(out, 18u);
}

TEST(EventPool, RecyclesLifo) {
  obs::TraceContext ctx{};
  EventPool pool;
  std::uint32_t a = pool.acquire([] {}, ctx);
  std::uint32_t b = pool.acquire([] {}, ctx);
  EXPECT_EQ(pool.fresh_count(), 2u);
  EXPECT_EQ(pool.recycled_count(), 0u);
  EXPECT_EQ(pool.live(), 2u);
  pool.release(b);
  pool.release(a);
  // LIFO: the most recently released slot is reissued first.
  EXPECT_EQ(pool.acquire([] {}, ctx), a);
  EXPECT_EQ(pool.acquire([] {}, ctx), b);
  EXPECT_EQ(pool.fresh_count(), 2u);
  EXPECT_EQ(pool.recycled_count(), 2u);
}

TEST(EventPool, ClearDropsSlabsKeepsMonotonicTotals) {
  obs::TraceContext ctx{};
  EventPool pool;
  for (int i = 0; i < 10; ++i) pool.acquire([] {}, ctx);
  EXPECT_GE(pool.capacity(), 10u);
  pool.clear();
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.capacity(), 0u);
  EXPECT_EQ(pool.fresh_count(), 10u);  // counters never go backwards
  std::uint32_t slot = pool.acquire([] {}, ctx);
  EXPECT_EQ(slot, 0u);  // handle space restarts after reset
  EXPECT_EQ(pool.fresh_count(), 11u);
}

TEST(EventPool, SlotStateSurvivesSlabGrowth) {
  obs::TraceContext ctx{1, 2};
  EventPool pool;
  int hits = 0;
  std::uint32_t first = pool.acquire([&hits] { ++hits; }, ctx);
  // Push past one slab so chunks_ grows; the first slot must stay valid
  // (slabs are chunked precisely to avoid relocation).
  for (std::uint32_t i = 0; i < EventPool::kChunkSize + 5; ++i) pool.acquire([] {}, ctx);
  pool.at(first).fn();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(pool.at(first).ctx.trace_id, 1u);
}

// The steady-state property on the sequential oracle: a fixed population of
// self-rescheduling events reaches its slot high-water mark during warmup
// and never allocates again.
TEST(EventPoolSteadyState, SequentialEngineAllocationsGoFlat) {
  Simulator simulator;
  constexpr int kChains = 16;
  std::uint64_t executed = 0;
  std::function<void(int)> hop = [&](int chain) {
    ++executed;
    if (executed < 10000)
      simulator.schedule(Duration::micros(10 + chain), [&hop, chain] { hop(chain); });
  };
  for (int c = 0; c < kChains; ++c)
    simulator.schedule(Duration::micros(c + 1), [&hop, c] { hop(c); });
  // Warmup: run a slice, note the high-water mark.
  while (executed < 1000 && simulator.step()) {
  }
  const std::uint64_t fresh_after_warmup = simulator.pool().fresh_count();
  simulator.run();
  // The stop condition is checked inside the handler, so the other chains'
  // in-flight hops still drain: 10000 plus at most one tail hop per chain.
  EXPECT_GE(executed, 10000u);
  EXPECT_LT(executed, 10000u + kChains);
  // Steady state must be pure recycling: zero fresh slots after warmup.
  EXPECT_EQ(simulator.pool().fresh_count(), fresh_after_warmup);
  EXPECT_GT(simulator.pool().recycled_count(), 0u);
  EXPECT_LE(fresh_after_warmup, 2u * kChains);
}

// Same property on the sharded engine, including cross-shard mail traffic,
// and alloc counts must not depend on the thread count.
TEST(EventPoolSteadyState, ShardedEngineAllocationsGoFlatAndThreadInvariant) {
  auto run_engine = [](std::size_t threads) {
    ShardedSimulator::Options opts;
    opts.threads = threads;
    opts.lookahead = Duration::micros(50);
    ShardedSimulator engine(4, opts);
    auto counters = std::make_shared<std::array<std::uint64_t, 4>>();
    counters->fill(0);
    std::shared_ptr<std::function<void(ShardId)>> hop =
        std::make_shared<std::function<void(ShardId)>>();
    *hop = [&engine, counters, hop](ShardId shard) {
      std::uint64_t n = ++(*counters)[shard];
      if (n >= 2000) return;
      // Mostly local ticks, a periodic cross-shard post.
      if (n % 10 == 0) {
        engine.post((shard + 1) % 4, Duration::micros(60),
                    [hop, shard] { (*hop)((shard + 1) % 4); });
      } else {
        engine.schedule(shard, Duration::micros(5), [hop, shard] { (*hop)(shard); });
      }
    };
    for (ShardId s = 0; s < 4; ++s)
      engine.schedule(s, Duration::micros(1), [hop, s] { (*hop)(s); });
    engine.run();
    return std::pair<std::uint64_t, std::uint64_t>{engine.alloc_fresh_total(),
                                                   engine.alloc_recycled_total()};
  };
  auto [fresh1, recycled1] = run_engine(1);
  auto [fresh4, recycled4] = run_engine(4);
  // The arena never grows past the tiny live population...
  EXPECT_LE(fresh1, 64u);
  EXPECT_GT(recycled1, 1000u);
  // ...and the fresh/recycled split is a pure function of the timeline.
  EXPECT_EQ(fresh1, fresh4);
  EXPECT_EQ(recycled1, recycled4);
}

}  // namespace
}  // namespace softmow::sim
