// bench_compare: gating semantics of the BENCH_*.json perf-regression
// comparator — per-headline tolerance and direction, missing-series
// handling, --strict, and the PASS/REGRESSION verdict.
#include "tools/bench_compare.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace softmow::tools {
namespace {

struct TestHeadline {
  std::string name;
  double value = 0;
  double tolerance = 0.10;
  bool higher_is_better = false;
  bool gate = true;
};

obs::JsonValue make_report(const std::vector<TestHeadline>& headlines) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("schema", obs::JsonValue::string("softmow.bench.v1"));
  obs::JsonValue arr = obs::JsonValue::array();
  for (const TestHeadline& h : headlines) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("name", obs::JsonValue::string(h.name));
    entry.set("value", obs::JsonValue::number(h.value));
    entry.set("tolerance", obs::JsonValue::number(h.tolerance));
    entry.set("higher_is_better", obs::JsonValue::boolean(h.higher_is_better));
    entry.set("gate", obs::JsonValue::boolean(h.gate));
    arr.push_back(std::move(entry));
  }
  doc.set("headline", std::move(arr));
  return doc;
}

const CompareRow* find_row(const CompareReport& report, const std::string& name) {
  for (const CompareRow& r : report.rows)
    if (r.name == name) return &r;
  return nullptr;
}

TEST(BenchCompare, IdenticalReportsPass) {
  auto report = make_report({{"wall_total_ms", 120.0}, {"events", 5000.0}});
  CompareReport cmp = compare_reports(report, report, {});
  EXPECT_FALSE(cmp.has_regression());
  ASSERT_EQ(cmp.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(cmp.rows[0].rel_change, 0.0);
}

TEST(BenchCompare, RegressionBeyondTolerance) {
  auto base = make_report({{"events", 1000.0}});
  auto slow = make_report({{"events", 1200.0}});  // +20% of a lower-is-better count
  CompareReport cmp = compare_reports(base, slow, {});
  EXPECT_TRUE(cmp.has_regression());
  ASSERT_NE(find_row(cmp, "events"), nullptr);
  EXPECT_TRUE(find_row(cmp, "events")->regressed);
  EXPECT_DOUBLE_EQ(find_row(cmp, "events")->rel_change, 0.2);

  auto ok = make_report({{"events", 1050.0}});  // +5% stays inside 10%
  EXPECT_FALSE(compare_reports(base, ok, {}).has_regression());
}

TEST(BenchCompare, HigherIsBetterFlipsTheLosingDirection) {
  auto base = make_report(
      {{"speedup_over_realtime", 100.0, 0.10, /*higher_is_better=*/true}});
  // A 20% *gain* never regresses; a 20% *drop* does.
  auto faster = make_report({{"speedup_over_realtime", 120.0, 0.10, true}});
  auto slower = make_report({{"speedup_over_realtime", 80.0, 0.10, true}});
  EXPECT_FALSE(compare_reports(base, faster, {}).has_regression());
  EXPECT_TRUE(compare_reports(base, slower, {}).has_regression());
}

TEST(BenchCompare, DeclaredToleranceWinsUnlessStrict) {
  // Wall headlines declare a wide tolerance (cross-machine noise): a 50%
  // change passes normally but fails under --strict's uniform threshold.
  auto base = make_report({{"wall_total_ms", 100.0, 0.80}});
  auto cand = make_report({{"wall_total_ms", 150.0, 0.80}});
  EXPECT_FALSE(compare_reports(base, cand, {}).has_regression());

  CompareOptions strict;
  strict.ignore_declared = true;
  EXPECT_TRUE(compare_reports(base, cand, strict).has_regression());
}

TEST(BenchCompare, MissingGatedHeadlineRegresses) {
  auto base = make_report({{"events", 1000.0}});
  auto cand = make_report({});
  CompareReport cmp = compare_reports(base, cand, {});
  EXPECT_TRUE(cmp.has_regression());
  ASSERT_EQ(cmp.rows.size(), 1u);
  EXPECT_TRUE(cmp.rows[0].missing);
}

TEST(BenchCompare, UngatedAndNewHeadlinesNeverFail) {
  auto base = make_report({{"info_metric", 10.0, 0.10, false, /*gate=*/false}});
  auto cand = make_report({{"info_metric", 99.0, 0.10, false, false},
                           {"brand_new", 7.0}});
  CompareReport cmp = compare_reports(base, cand, {});
  EXPECT_FALSE(cmp.has_regression());
  const CompareRow* fresh = find_row(cmp, "brand_new (new)");
  ASSERT_NE(fresh, nullptr);
  EXPECT_FALSE(fresh->gated);
}

TEST(BenchCompare, ZeroBaselineNeverGates) {
  auto base = make_report({{"failures", 0.0}});
  auto cand = make_report({{"failures", 3.0}});
  EXPECT_FALSE(compare_reports(base, cand, {}).has_regression());
}

TEST(BenchCompare, FormatReportCarriesVerdict) {
  auto base = make_report({{"events", 1000.0}});
  CompareReport pass = compare_reports(base, base, {});
  EXPECT_NE(format_report(pass, {}).find("-> PASS"), std::string::npos);

  CompareReport fail = compare_reports(base, make_report({{"events", 2000.0}}), {});
  std::string text = format_report(fail, {});
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("-> REGRESSION"), std::string::npos);
}

TEST(BenchCompare, MissingFileIsAnError) {
  CompareReport cmp = compare_paths("/nonexistent/a.json", "/nonexistent/b.json", {});
  EXPECT_FALSE(cmp.errors.empty());
}

}  // namespace
}  // namespace softmow::tools
