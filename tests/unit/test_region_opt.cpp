#include <gtest/gtest.h>

#include "apps/region_opt.h"
#include "core/rng.h"

namespace softmow::apps {
namespace {

// The paper's Figure 7b instance: border G-BSes 2, 3, 4, internal
// aggregates IA (region A) and IB (region B). The root sees 900
// inter-region handovers; moving G-BS 3 from B to A yields the maximum gain
// 200 (= 500 - 200 - 100).
class Fig7Test : public ::testing::Test {
 protected:
  void SetUp() override {
    input.graph.add(gbs3, gbs4, 500);  // cross (B-A)
    input.graph.add(gbs3, ib, 200);    // internal to B
    input.graph.add(gbs3, gbs2, 100);  // internal to B
    input.graph.add(gbs2, ia, 250);    // cross (B-A)
    input.graph.add(gbs4, ib, 100);    // cross (A-B)
    input.graph.add(gbs4, ia, 450);    // internal to A (anchors 4 in A)
    input.graph.add(ia, ib, 50);       // cross, not movable
    input.attach = {{gbs2, gsb}, {gbs3, gsb}, {gbs4, gsa}, {ia, gsa}, {ib, gsb}};
    input.movable = {gbs2, gbs3, gbs4};
    input.gswitch_links = {{gsa, gsb}};
    // Gains: 3->A = 500-(200+100) = 200 (max, as in the paper);
    //        2->A = 250-100 = 150; 4->B = (500+100)-450 = 150.
  }

  GBsId gbs2{2}, gbs3{3}, gbs4{4}, ia{100}, ib{101};
  SwitchId gsa{1}, gsb{2};
  RegionOptInput input;
};

TEST_F(Fig7Test, InitialCrossWeightIs900) {
  EXPECT_DOUBLE_EQ(cross_region_weight(input.graph, input.attach), 900);
}

TEST_F(Fig7Test, FirstMoveIsGbs3WithGain200) {
  RegionOptConstraints unconstrained;
  unconstrained.lb_factor = 0;
  unconstrained.ub_factor = 100;
  unconstrained.max_moves = 1;
  auto result = greedy_region_optimization(input, unconstrained);
  ASSERT_EQ(result.moves.size(), 1u);
  EXPECT_EQ(result.moves[0].gbs, gbs3);
  EXPECT_EQ(result.moves[0].from, gsb);
  EXPECT_EQ(result.moves[0].to, gsa);
  EXPECT_DOUBLE_EQ(result.moves[0].gain, 200);
  EXPECT_DOUBLE_EQ(result.final_cross_weight, 700);  // Fig. 7c
}

TEST_F(Fig7Test, RunsToConvergenceWithPositiveGains) {
  RegionOptConstraints unconstrained;
  unconstrained.lb_factor = 0;
  unconstrained.ub_factor = 100;
  auto result = greedy_region_optimization(input, unconstrained);
  double total_gain = 0;
  for (const Move& m : result.moves) {
    EXPECT_GT(m.gain, 0);
    total_gain += m.gain;
  }
  EXPECT_DOUBLE_EQ(result.initial_cross_weight - result.final_cross_weight, total_gain);
  // Convergence: re-running on the final assignment finds nothing.
  RegionOptInput again = input;
  again.attach = result.final_attach;
  auto second = greedy_region_optimization(again, unconstrained);
  EXPECT_TRUE(second.moves.empty());
}

TEST_F(Fig7Test, LoadConstraintsCanBlockTheBestMove) {
  // Give G-BS 3 so much load that moving it would overload region A.
  input.load = {{gbs2, 1}, {gbs3, 100}, {gbs4, 1}, {ia, 1}, {ib, 1}};
  RegionOptConstraints tight;
  tight.lb_factor = 0.7;
  tight.ub_factor = 1.3;  // region A starts at 2; +100 is far beyond 1.3x
  auto result = greedy_region_optimization(input, tight);
  for (const Move& m : result.moves) EXPECT_NE(m.gbs, gbs3);
}

TEST_F(Fig7Test, MovesRequireAnInterGSwitchLink) {
  input.gswitch_links.clear();  // no link between the regions
  RegionOptConstraints unconstrained;
  unconstrained.lb_factor = 0;
  unconstrained.ub_factor = 100;
  auto result = greedy_region_optimization(input, unconstrained);
  EXPECT_TRUE(result.moves.empty());
}

TEST_F(Fig7Test, InternalAggregatesNeverMove) {
  RegionOptConstraints unconstrained;
  unconstrained.lb_factor = 0;
  unconstrained.ub_factor = 100;
  auto result = greedy_region_optimization(input, unconstrained);
  for (const Move& m : result.moves) {
    EXPECT_NE(m.gbs, ia);
    EXPECT_NE(m.gbs, ib);
  }
}

TEST_F(Fig7Test, MaxMovesBudgetRespected) {
  RegionOptConstraints capped;
  capped.lb_factor = 0;
  capped.ub_factor = 100;
  capped.max_moves = 1;
  auto result = greedy_region_optimization(input, capped);
  EXPECT_LE(result.moves.size(), 1u);
}

// Property sweep over random instances: the greedy never increases the
// cross-region weight, each move has positive gain, and it terminates.
class RegionOptRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RegionOptRandomTest, NeverWorseAndTerminates) {
  Rng rng(GetParam());
  RegionOptInput input;
  const std::size_t groups = 60, regions = 4;
  for (std::size_t g = 0; g < groups; ++g) {
    GBsId id{g};
    input.attach[id] = SwitchId{rng.uniform_u64(0, regions - 1)};
    input.load[id] = rng.uniform(1, 10);
    input.movable.insert(id);
  }
  for (int e = 0; e < 200; ++e) {
    GBsId a{rng.uniform_u64(0, groups - 1)}, b{rng.uniform_u64(0, groups - 1)};
    if (a == b) continue;
    input.graph.add(a, b, rng.uniform(1, 100));
  }
  for (std::size_t r = 0; r < regions; ++r)
    for (std::size_t s = r + 1; s < regions; ++s)
      input.gswitch_links.insert({SwitchId{r}, SwitchId{s}});

  RegionOptConstraints constraints;  // the paper's ±30%
  auto result = greedy_region_optimization(input, constraints);
  EXPECT_LE(result.final_cross_weight, result.initial_cross_weight + 1e-9);
  for (const Move& m : result.moves) EXPECT_GT(m.gain, 0);
  EXPECT_LT(result.moves.size(), 10000u);  // terminated sanely

  // §5.3.1 constraints: every region's final load within its envelope.
  std::map<SwitchId, double> initial_load, final_load;
  for (const auto& [g, sw] : input.attach) initial_load[sw] += input.load[g];
  for (const auto& [g, sw] : result.final_attach) final_load[sw] += input.load[g];
  for (const auto& [sw, load] : final_load) {
    EXPECT_GE(load + 1e-6, initial_load[sw] * constraints.lb_factor) << sw.str();
    EXPECT_LE(load - 1e-6, initial_load[sw] * constraints.ub_factor) << sw.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionOptRandomTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace softmow::apps
