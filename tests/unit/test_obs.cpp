#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace softmow::obs {
namespace {

TEST(MetricsRegistry, CounterGetOrCreateSharesOneCell) {
  MetricsRegistry reg;
  Counter* a = reg.counter("messages_total", {{"direction", "up"}});
  Counter* b = reg.counter("messages_total", {{"direction", "up"}});
  Counter* other = reg.counter("messages_total", {{"direction", "down"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->inc();
  b->inc(4);
  EXPECT_EQ(a->value(), 5u);
  EXPECT_EQ(other->value(), 0u);
}

TEST(MetricsRegistry, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x", {{"b", "2"}, {"a", "1"}});
  Counter* b = reg.counter("x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistry, HandlesStayValidAsRegistryGrows) {
  MetricsRegistry reg;
  Counter* first = reg.counter("first");
  first->inc();
  // Force many registrations; `first` must not be invalidated.
  for (int i = 0; i < 1000; ++i) {
    std::string name = "c";  // built piecewise: GCC 12 -Wrestrict FP on char*+string&&
    name += std::to_string(i);
    reg.counter(name);
  }
  first->inc();
  EXPECT_EQ(first->value(), 2u);
  EXPECT_EQ(reg.series_count(), 1001u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("queue_depth");
  g->set(3);
  g->add(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 5.5);
}

TEST(Histogram, BucketBoundariesAreInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (boundary is inclusive)
  h.observe(10.0);   // <= 10
  h.observe(99.9);   // <= 100
  h.observe(1000.0); // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 10.0 + 99.9 + 1000.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.cumulative(0), 2u);
  EXPECT_EQ(h.cumulative(2), 4u);
  EXPECT_EQ(h.cumulative(3), 5u);
}

TEST(Histogram, ExponentialBounds) {
  auto bounds = Histogram::exponential_bounds(1.0, 4.0, 4);
  EXPECT_EQ(bounds, (std::vector<double>{1, 4, 16, 64}));
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.counter("n");
  Histogram* h = reg.histogram("lat", {1.0, 2.0});
  c->inc(7);
  h->observe(1.5);
  reg.reset_values();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.counter("n"), c);  // same cell, still registered
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("zeta")->inc(1);
  reg.gauge("alpha")->set(2);
  reg.histogram("mid", {5.0})->observe(3);
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
  EXPECT_EQ(snap[2].counter_value, 1u);
}

TEST(Json, ParsePrimitivesAndStructure) {
  auto doc = JsonValue::parse(R"({"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}})");
  ASSERT_TRUE(doc.ok());
  const JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size(), 5u);
  EXPECT_DOUBLE_EQ(a->at(1).as_number(), 2.5);
  EXPECT_EQ(a->at(2).as_string(), "x\n");
  EXPECT_TRUE(a->at(3).as_bool());
  EXPECT_TRUE(a->at(4).is_null());
  EXPECT_DOUBLE_EQ(doc->find("b")->find("c")->as_number(), -3);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("{").ok());
  EXPECT_FALSE(JsonValue::parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::parse(R"({"a" 1})").ok());
}

TEST(Json, ControlCharactersEscapeAndRoundTrip) {
  // Every control byte below 0x20 must serialize as valid JSON (\uXXXX or a
  // short escape) and parse back to the identical byte string.
  std::string raw;
  for (char c = 1; c < 0x20; ++c) raw.push_back(c);
  raw += "tail\x01mid\x1f";
  JsonValue obj = JsonValue::object();
  obj.set("s", JsonValue::string(raw));

  std::string doc = obj.dump(-1);  // compact: no formatting newlines
  for (char c : doc) EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control byte";
  EXPECT_NE(doc.find("\\u0001"), std::string::npos);
  EXPECT_NE(doc.find("\\u001f"), std::string::npos);

  auto back = JsonValue::parse(doc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->find("s")->as_string(), raw);
}

TEST(Json, DumpParseRoundTrip) {
  JsonValue obj = JsonValue::object();
  obj.set("name", JsonValue::string("with \"quotes\" and\nnewline"));
  obj.set("n", JsonValue::number(std::uint64_t{1234567}));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::number(0.25));
  arr.push_back(JsonValue::boolean(false));
  obj.set("arr", std::move(arr));

  auto back = JsonValue::parse(obj.dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->find("name")->as_string(), "with \"quotes\" and\nnewline");
  EXPECT_EQ(back->find("n")->as_uint(), 1234567u);
  EXPECT_DOUBLE_EQ(back->find("arr")->at(0).as_number(), 0.25);
}

/// The acceptance-criteria round trip: populate a registry + tracer, export
/// JSON, parse it back, and recover the exact values.
TEST(Export, RegistryJsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("controller_messages_total", {{"level", "1"}})->inc(42);
  reg.counter("controller_messages_total", {{"level", "2"}})->inc(7);
  reg.gauge("cross_weight")->set(123.5);
  Histogram* h = reg.histogram("queue_wait_us", {10.0, 100.0}, {{"station", "leaf-0"}});
  h->observe(5);
  h->observe(50);
  h->observe(5000);

  Tracer tracer;
  tracer.span(sim::TimePoint::zero(), sim::TimePoint::at(sim::Duration::millis(3)),
              "discovery.convergence", 1, "leaf-0", "99 messages");
  tracer.event(sim::TimePoint::at(sim::Duration::seconds(1)), "failover.promote", 1, "leaf-0");

  auto doc = JsonValue::parse(to_json(reg, &tracer));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->find("schema")->as_string(), "softmow.obs.v3");

  const JsonValue* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->size(), 4u);  // sorted: 2 counters, gauge, histogram

  auto find_metric = [&](const std::string& name,
                         const std::string& label_key, const std::string& label_value)
      -> const JsonValue* {
    for (const JsonValue& m : metrics->items()) {
      if (m.find("name")->as_string() != name) continue;
      const JsonValue* labels = m.find("labels");
      if (label_key.empty()) return &m;
      const JsonValue* v = labels->find(label_key);
      if (v != nullptr && v->as_string() == label_value) return &m;
    }
    return nullptr;
  };

  const JsonValue* l1 = find_metric("controller_messages_total", "level", "1");
  ASSERT_NE(l1, nullptr);
  EXPECT_EQ(l1->find("kind")->as_string(), "counter");
  EXPECT_EQ(l1->find("value")->as_uint(), 42u);
  EXPECT_EQ(find_metric("controller_messages_total", "level", "2")->find("value")->as_uint(),
            7u);
  EXPECT_DOUBLE_EQ(find_metric("cross_weight", "", "")->find("value")->as_number(), 123.5);

  const JsonValue* hist = find_metric("queue_wait_us", "station", "leaf-0");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("kind")->as_string(), "histogram");
  EXPECT_EQ(hist->find("count")->as_uint(), 3u);
  EXPECT_DOUBLE_EQ(hist->find("sum")->as_number(), 5055.0);
  ASSERT_EQ(hist->find("bounds")->size(), 2u);
  ASSERT_EQ(hist->find("buckets")->size(), 3u);
  EXPECT_EQ(hist->find("buckets")->at(0).as_uint(), 1u);
  EXPECT_EQ(hist->find("buckets")->at(2).as_uint(), 1u);

  const JsonValue* trace = doc->find("trace");
  ASSERT_NE(trace, nullptr);
  const JsonValue* spans = trace->find("spans");
  ASSERT_EQ(spans->size(), 1u);
  EXPECT_EQ(spans->at(0).find("name")->as_string(), "discovery.convergence");
  EXPECT_EQ(spans->at(0).find("level")->as_uint(), 1u);
  EXPECT_EQ(spans->at(0).find("begin_ns")->as_uint(), 0u);
  EXPECT_EQ(spans->at(0).find("end_ns")->as_uint(), 3000000u);
  EXPECT_EQ(spans->at(0).find("detail")->as_string(), "99 messages");
  const JsonValue* events = trace->find("events");
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ(events->at(0).find("name")->as_string(), "failover.promote");
  EXPECT_EQ(events->at(0).find("at_ns")->as_uint(), 1000000000u);
}

TEST(Export, CsvFlattensHistogramsCumulatively) {
  MetricsRegistry reg;
  reg.counter("msgs", {{"dir", "up"}})->inc(3);
  Histogram* h = reg.histogram("wait", {1.0, 10.0});
  h->observe(0.5);
  h->observe(0.6);
  h->observe(100.0);

  std::string csv = to_csv(reg);
  EXPECT_NE(csv.find("name,labels,kind,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("msgs,dir=up,counter,value,3\n"), std::string::npos);
  EXPECT_NE(csv.find("wait,,histogram,count,3\n"), std::string::npos);
  EXPECT_NE(csv.find("wait,,histogram,le_1,2\n"), std::string::npos);
  EXPECT_NE(csv.find("wait,,histogram,le_10,2\n"), std::string::npos);
  EXPECT_NE(csv.find("wait,,histogram,le_+inf,3\n"), std::string::npos);
}

TEST(Tracer, SpansFilterByLevelAndPendingSpanCloses) {
  Tracer tracer;
  tracer.span(sim::TimePoint::zero(), sim::TimePoint::at(sim::Duration::millis(1)), "a", 1);
  auto pending = tracer.begin_span(sim::TimePoint::at(sim::Duration::millis(2)), "b", 2, "root");
  pending.close(sim::TimePoint::at(sim::Duration::millis(5)), "done");
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans_at_level(2).size(), 1u);
  EXPECT_EQ(tracer.spans_at_level(2)[0].duration().to_millis(), 3);
  EXPECT_EQ(tracer.spans_at_level(3).size(), 0u);
}

TEST(Tracer, RingBufferCapacityDropsOldestAndCounts) {
  MetricsRegistry reg;
  Tracer tracer(&reg);
  tracer.set_capacity(4);
  EXPECT_EQ(tracer.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    sim::TimePoint at = sim::TimePoint::at(sim::Duration::millis(i));
    std::string span_name = "s";  // built piecewise: GCC 12 -Wrestrict FP
    span_name += std::to_string(i);
    std::string event_name = "e";
    event_name += std::to_string(i);
    tracer.span(at, at + sim::Duration::millis(1), span_name, 0);
    tracer.event(at, event_name, 0);
  }
  ASSERT_EQ(tracer.spans().size(), 4u);
  ASSERT_EQ(tracer.events().size(), 4u);
  // Oldest entries were evicted: the survivors are the last four.
  EXPECT_EQ(tracer.spans().front().name, "s6");
  EXPECT_EQ(tracer.spans().back().name, "s9");
  EXPECT_EQ(tracer.dropped_spans(), 6u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
  EXPECT_EQ(reg.counter("trace_dropped_total", {{"buffer", "spans"}})->value(), 6u);
  EXPECT_EQ(reg.counter("trace_dropped_total", {{"buffer", "events"}})->value(), 6u);

  // Shrinking below the current size evicts immediately.
  tracer.set_capacity(2);
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans().front().name, "s8");
}

TEST(DefaultRegistry, IsProcessWideSingleton) {
  Counter* a = default_registry().counter("obs_test_singleton");
  Counter* b = default_registry().counter("obs_test_singleton");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace softmow::obs
