// determinism_lint library: each hazard class fires on a minimal repro, the
// comment/string stripper prevents false positives from docs, and the
// allowlist suppresses exactly what it names.
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace softmow::tools {
namespace {

std::vector<LintCheck> checks_of(const std::vector<LintFinding>& findings) {
  std::vector<LintCheck> out;
  out.reserve(findings.size());
  for (const LintFinding& f : findings) out.push_back(f.check);
  return out;
}

bool has_check(const std::vector<LintFinding>& findings, LintCheck check) {
  return std::any_of(findings.begin(), findings.end(),
                     [check](const LintFinding& f) { return f.check == check; });
}

TEST(Lint, WallClockNowIsFlagged) {
  auto findings = lint_source("x.cpp", R"(
    auto a = std::chrono::steady_clock::now();
    auto b = std::chrono::system_clock::now();
    auto c = std::chrono::high_resolution_clock::now();
  )");
  ASSERT_EQ(findings.size(), 3u);
  for (const LintFinding& f : findings) {
    EXPECT_EQ(f.check, LintCheck::kWallClock);
    EXPECT_EQ(f.file, "x.cpp");
  }
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].snippet.find("steady_clock"), std::string::npos);
}

TEST(Lint, LibcRandFamilyIsFlagged) {
  auto findings = lint_source("x.cpp", R"(
    int a = rand();
    srand(42);
    long b = random();
    double c = drand48();
  )");
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_TRUE(has_check(findings, LintCheck::kLibcRand));
}

TEST(Lint, RandLikeIdentifiersAreNotFlagged) {
  // Member calls, qualified names and substrings must not trip the matcher.
  auto findings = lint_source("x.cpp", R"(
    double x = rng.rand();
    auto y = my_rand(1);
    auto z = core::rand(seed);
    int operand(int);
  )");
  EXPECT_TRUE(findings.empty()) << findings.front().str();
}

TEST(Lint, RandomDeviceAndUnseededEnginesAreFlagged) {
  auto findings = lint_source("x.cpp", R"(
    std::random_device rd;
    std::mt19937_64 engine;
    std::mt19937 small{};
    std::default_random_engine basic;
  )");
  auto checks = checks_of(findings);
  EXPECT_EQ(std::count(checks.begin(), checks.end(), LintCheck::kRandomDevice), 1);
  EXPECT_EQ(std::count(checks.begin(), checks.end(), LintCheck::kUnseededRng), 3);
}

TEST(Lint, SeededEnginesAreNotFlagged) {
  auto findings = lint_source("x.cpp", R"(
    std::mt19937_64 engine(seed);
    std::mt19937_64 forked{fork_seed(base, 7)};
  )");
  EXPECT_FALSE(has_check(findings, LintCheck::kUnseededRng));
}

TEST(Lint, PointerKeyedOrderedContainersAreFlagged) {
  auto findings = lint_source("x.cpp", R"(
    std::map<Node*, int> by_node;
    std::set<const Channel*> live;
    std::map<std::string, Node*> values_are_fine;
    std::unordered_map<Node*, int> hashed_is_a_different_check;
  )");
  auto checks = checks_of(findings);
  EXPECT_EQ(std::count(checks.begin(), checks.end(), LintCheck::kPointerKey), 2);
}

TEST(Lint, UnorderedIterationWhereDeclaredInFile) {
  auto findings = lint_source("x.cpp", R"(
    std::unordered_map<int, int> table_;
    std::map<int, int> ordered_;
    void f() {
      for (const auto& [k, v] : table_) use(k, v);
      for (const auto& [k, v] : ordered_) use(k, v);
      for (auto& kv : obj.table_) use(kv);
    }
  )");
  auto checks = checks_of(findings);
  EXPECT_EQ(std::count(checks.begin(), checks.end(), LintCheck::kUnorderedIteration), 2)
      << "member access through an object must still resolve the leaf name";
}

TEST(Lint, CommentsAndStringsNeverTrip) {
  auto findings = lint_source("x.cpp", R"lint(
    // std::chrono::steady_clock::now() documented here
    /* rand() in a block comment
       std::random_device too */
    const char* msg = "call rand() then steady_clock::now()";
    char c = 'r';
    (void)msg; (void)c;
  )lint");
  EXPECT_TRUE(findings.empty()) << findings.front().str();
}

TEST(Lint, AllowlistSuppressesByFileAndByLine) {
  auto findings = lint_source("src/sim/engine.cpp", R"(
    auto a = std::chrono::steady_clock::now();
    int b = rand();
  )");
  ASSERT_EQ(findings.size(), 2u);

  Allowlist allow = Allowlist::parse(R"(
    # audited: wall-clock feeds reporting only
    src/sim/engine.cpp:wall-clock
    src/sim/engine.cpp:3:libc-rand
  )");
  EXPECT_EQ(apply_allowlist(findings, allow), 0u);
  EXPECT_TRUE(findings[0].allowlisted);
  EXPECT_TRUE(findings[1].allowlisted);

  // A line-pinned entry for the wrong line does not suppress.
  Allowlist wrong_line = Allowlist::parse("src/sim/engine.cpp:99:libc-rand\n");
  EXPECT_EQ(apply_allowlist(findings, wrong_line), 2u);
  EXPECT_FALSE(findings[1].allowlisted);

  // Entries never bleed across files or checks.
  Allowlist other = Allowlist::parse("src/nos/other.cpp:wall-clock\n"
                                     "src/sim/engine.cpp:unordered-iteration\n");
  EXPECT_EQ(apply_allowlist(findings, other), 2u);
}

TEST(Lint, FindingStrCarriesBlame) {
  auto findings = lint_source("a.cpp", "int x = rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].str(), "a.cpp:1: [libc-rand] int x = rand();");
}

TEST(Lint, RepoEngineSourceOnlyHasAllowlistedWallClock) {
  // The real engine file: its only hazards are the two audited wall-clock
  // reads feeding events/sec reporting (see tools/determinism_lint.allow).
  std::vector<LintFinding> findings;
  for (const char* candidate :
       {"src/sim/sharded.cpp", "../src/sim/sharded.cpp", "../../src/sim/sharded.cpp",
        "../../../src/sim/sharded.cpp"}) {
    findings = lint_file(candidate);
    if (!findings.empty()) break;
  }
  if (findings.empty()) {
    GTEST_SKIP() << "source tree not reachable from test cwd";
  }
  for (const LintFinding& f : findings) EXPECT_EQ(f.check, LintCheck::kWallClock) << f.str();
}

}  // namespace
}  // namespace softmow::tools
