#include <gtest/gtest.h>

#include "obs/chrome_trace.h"
#include "obs/critical_path.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace softmow::obs {
namespace {

sim::TimePoint at_ms(double ms) { return sim::TimePoint::at(sim::Duration::millis(ms)); }

TEST(SpanTree, ThreeLevelParentLinkage) {
  Tracer tracer;
  TraceContext root = tracer.open_span_under({}, at_ms(0), "bearer.setup", 3, "root");
  TraceContext mid = tracer.open_span_under(root, at_ms(1), "delegate", 2, "mid-0");
  TraceContext leaf =
      tracer.span_under(mid, at_ms(2), at_ms(3), "flowmod.translate", 1, "leaf-0");
  tracer.close_span(mid, at_ms(4));
  tracer.close_span(root, at_ms(5), "done");

  // One trace: all three spans share the root's trace_id.
  EXPECT_EQ(mid.trace_id, root.trace_id);
  EXPECT_EQ(leaf.trace_id, root.trace_id);
  ASSERT_EQ(tracer.spans().size(), 3u);

  const TraceSpan* root_span = tracer.find_span(root.span_id);
  const TraceSpan* mid_span = tracer.find_span(mid.span_id);
  const TraceSpan* leaf_span = tracer.find_span(leaf.span_id);
  ASSERT_NE(root_span, nullptr);
  ASSERT_NE(mid_span, nullptr);
  ASSERT_NE(leaf_span, nullptr);
  EXPECT_EQ(root_span->parent_id, 0u);
  EXPECT_EQ(mid_span->parent_id, root.span_id);
  EXPECT_EQ(leaf_span->parent_id, mid.span_id);
  EXPECT_EQ(root_span->detail, "done");

  ASSERT_EQ(tracer.children_of(root.span_id).size(), 1u);
  EXPECT_EQ(tracer.children_of(root.span_id)[0]->span_id, mid.span_id);
  ASSERT_EQ(tracer.children_of(mid.span_id).size(), 1u);
  EXPECT_EQ(tracer.children_of(mid.span_id)[0]->span_id, leaf.span_id);
}

TEST(SpanTree, AmbientContextFlowsThroughScheduledEvents) {
  Tracer& tracer = default_tracer();
  tracer.clear();
  sim::Simulator simulator;

  TraceContext op = tracer.open_span_under({}, at_ms(0), "op", 1, "test");
  {
    // Events scheduled while `op` is ambient inherit it; spans recorded in
    // the callback attach to the operation even though it runs later.
    Tracer::ScopedContext scoped(tracer, op);
    simulator.schedule(sim::Duration::millis(1), [&] {
      tracer.span(simulator.now(), simulator.now() + sim::Duration::millis(1), "work", 2);
    });
  }
  // Scheduled outside any context: must NOT attach to `op`.
  simulator.schedule(sim::Duration::millis(2), [&] {
    tracer.span(simulator.now(), simulator.now(), "unrelated", 2);
  });
  simulator.run();
  tracer.close_span(op, at_ms(3));

  const TraceSpan* work = nullptr;
  const TraceSpan* unrelated = nullptr;
  for (const TraceSpan& s : tracer.spans()) {
    if (s.name == "work") work = &s;
    if (s.name == "unrelated") unrelated = &s;
  }
  ASSERT_NE(work, nullptr);
  ASSERT_NE(unrelated, nullptr);
  EXPECT_EQ(work->parent_id, op.span_id);
  EXPECT_EQ(work->trace_id, op.trace_id);
  EXPECT_EQ(unrelated->parent_id, 0u);
  tracer.clear();
}

TEST(SpanTree, QueueingStationRecordsWaitAndServiceUnderParent) {
  Tracer& tracer = default_tracer();
  tracer.clear();

  TraceContext op = tracer.open_span_under({}, at_ms(0), "op", 1, "leaf-0");
  sim::QueueingStation station(sim::Duration::millis(2), "cp-test-station", 1);
  // Two messages bursting at t=0: the second waits one full service time.
  station.submit(at_ms(0), sim::Duration::millis(2), op);
  sim::TimePoint done = station.submit(at_ms(0), sim::Duration::millis(2), op);
  tracer.close_span(op, done);
  EXPECT_EQ(done, at_ms(4));

  int waits = 0, services = 0;
  for (const TraceSpan& s : tracer.spans()) {
    if (s.name == "queue.wait") {
      ++waits;
      EXPECT_EQ(s.kind, SpanKind::kQueue);
      EXPECT_EQ(s.parent_id, op.span_id);
      EXPECT_EQ(s.duration(), sim::Duration::millis(2));
    }
    if (s.name == "queue.service") {
      ++services;
      EXPECT_EQ(s.kind, SpanKind::kProcess);
      EXPECT_EQ(s.parent_id, op.span_id);
    }
  }
  EXPECT_EQ(waits, 1);    // first message never waited
  EXPECT_EQ(services, 2);
  tracer.clear();
}

TEST(CriticalPath, BucketsSumExactlyToRootDuration) {
  Tracer tracer;
  // Hand-built tree: root op [0, 100] at level 0 with
  //   queue [0, 60] at level 1, process [60, 70] at level 1,
  //   propagate [70, 95] at level 2 — and 5 ms of root self-time.
  TraceContext root = tracer.open_span_under({}, at_ms(0), "op", 0, "root");
  tracer.span_under(root, at_ms(0), at_ms(60), "q", 1, "leaf", SpanKind::kQueue);
  tracer.span_under(root, at_ms(60), at_ms(70), "p", 1, "leaf", SpanKind::kProcess);
  tracer.span_under(root, at_ms(70), at_ms(95), "w", 2, "wire", SpanKind::kPropagate);
  tracer.close_span(root, at_ms(100));

  CriticalPathReport report = analyze_span_tree(tracer, root.span_id);
  EXPECT_EQ(report.duration(), sim::Duration::millis(100));
  EXPECT_EQ(report.attributed(), report.duration());  // exact, not approximate

  ASSERT_NE(report.level(0), nullptr);
  ASSERT_NE(report.level(1), nullptr);
  ASSERT_NE(report.level(2), nullptr);
  EXPECT_EQ(report.level(0)->processing, sim::Duration::millis(5));  // root self-time
  EXPECT_EQ(report.level(1)->queueing, sim::Duration::millis(60));
  EXPECT_EQ(report.level(1)->processing, sim::Duration::millis(10));
  EXPECT_EQ(report.level(2)->propagation, sim::Duration::millis(25));

  CriticalPathReport::Dominant dom = report.dominant();
  EXPECT_EQ(dom.level, 1);
  EXPECT_STREQ(dom.component, "queueing");
  EXPECT_EQ(dom.time, sim::Duration::millis(60));
}

TEST(CriticalPath, ConcurrentChildrenResolveViaBackwardWalk) {
  Tracer tracer;
  // Two overlapping children: the one still running at the root's end owns
  // the tail; the earlier child only owns time before the later one began.
  TraceContext root = tracer.open_span_under({}, at_ms(0), "op", 0, "root");
  tracer.span_under(root, at_ms(0), at_ms(80), "slow", 1, "a", SpanKind::kQueue);
  tracer.span_under(root, at_ms(20), at_ms(100), "gating", 2, "b", SpanKind::kProcess);
  tracer.close_span(root, at_ms(100));

  CriticalPathReport report = analyze_span_tree(tracer, root.span_id);
  EXPECT_EQ(report.attributed(), sim::Duration::millis(100));
  // [20, 100] gated by the level-2 process span, [0, 20] by the level-1 queue.
  ASSERT_NE(report.level(2), nullptr);
  EXPECT_EQ(report.level(2)->processing, sim::Duration::millis(80));
  ASSERT_NE(report.level(1), nullptr);
  EXPECT_EQ(report.level(1)->queueing, sim::Duration::millis(20));
}

TEST(CriticalPath, RootOperationsFilterAndBudgetTable) {
  Tracer tracer;
  TraceContext op = tracer.open_span_under({}, at_ms(0), "discovery.round", 2, "root");
  tracer.span_under(op, at_ms(0), at_ms(40), "q", 1, "leaf", SpanKind::kQueue);
  tracer.span_under(op, at_ms(40), at_ms(50), "w", 1, "leaf", SpanKind::kPropagate);
  tracer.close_span(op, at_ms(50));
  // Childless span: not a root operation.
  tracer.span(at_ms(0), at_ms(1), "flat", 0);

  auto reports = analyze_root_operations(tracer);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].name, "discovery.round");
  EXPECT_TRUE(analyze_root_operations(tracer, "discovery.").size() == 1);
  EXPECT_TRUE(analyze_root_operations(tracer, "bearer.").empty());

  std::string table = latency_budget_table(reports);
  EXPECT_NE(table.find("discovery.round"), std::string::npos);
  EXPECT_NE(table.find("bottleneck: queueing at level 1"), std::string::npos);
  EXPECT_NE(table.find("attributed 50.000 / 50.000 ms"), std::string::npos);
  EXPECT_EQ(latency_budget_table({}), "latency budget: no root operations traced\n");
}

TEST(ChromeTrace, ExportIsValidJsonWithSpansFlowsAndMetadata) {
  Tracer tracer;
  TraceContext root = tracer.open_span_under({}, at_ms(0), "op", 2, "root");
  tracer.span_under(root, at_ms(1), at_ms(3), "child", 1, "leaf-0", SpanKind::kQueue);
  tracer.close_span(root, at_ms(4));
  tracer.event_under(root, at_ms(2), "mark", 2, "root", "note");

  auto doc = JsonValue::parse(chrome_trace_string(tracer));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->find("displayTimeUnit")->as_string(), "ms");
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);

  int complete = 0, instants = 0, flows = 0, metadata = 0;
  for (const JsonValue& e : events->items()) {
    std::string ph = e.find("ph")->as_string();
    if (ph == "X") {
      ++complete;
      EXPECT_NE(e.find("ts"), nullptr);
      EXPECT_NE(e.find("dur"), nullptr);
      EXPECT_NE(e.find("tid"), nullptr);
      EXPECT_EQ(e.find("pid")->as_uint(), 1u);
      ASSERT_NE(e.find("args"), nullptr);
      EXPECT_NE(e.find("args")->find("trace_id"), nullptr);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.find("name")->as_string(), "mark");
    } else if (ph == "s" || ph == "f") {
      ++flows;  // parent and child sit on different (level, scope) tracks
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(flows, 2);  // one s/f pair for the cross-track parent->child edge
  EXPECT_GE(metadata, 3);  // process_name + one thread_name per track
}

}  // namespace
}  // namespace softmow::obs
