// The fault-injection subsystem: deterministic plan generation, synchronous
// (engine-less) recovery to a verified-clean data plane, and the modeled
// MTTR accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "softmow/softmow.h"

namespace softmow {
namespace {

std::vector<std::string> plan_signature(const faults::FaultScenario& plan) {
  std::vector<std::string> sig;
  for (const faults::FaultEvent& ev : plan.events) {
    char line[128];
    std::snprintf(line, sizeof line, "%.3f %s", ev.at.since_start().to_millis(),
                  ev.str().c_str());
    sig.emplace_back(line);
  }
  return sig;
}

/// Two tagged tenants with one open bearer each, so slice-aware plans
/// ("rogue-rule" needs a tagged classifier to forge) have material to work on.
std::unique_ptr<slice::SliceManager> add_tagged_tenants(topo::Scenario& scenario) {
  auto mgr = std::make_unique<slice::SliceManager>(scenario, slice::SliceManager::Options{});
  for (const char* name : {"a", "b"}) {
    slice::SliceSpec spec;
    spec.name = name;
    SliceId id = *mgr->add_slice(spec);
    EXPECT_TRUE(mgr->provision(id, 1).ok());
    EXPECT_TRUE(mgr->open_bearer(id, mgr->subscribers(id).front(), PrefixId{17}).ok());
  }
  return mgr;
}

TEST(FaultPlans, DeterministicForNameScenarioSeed) {
  // Same (name, scenario params, seed) on two independently built scenarios
  // must target the same links/switches/leaves at the same times.
  auto first = topo::build_scenario(topo::small_scenario_params(11));
  auto second = topo::build_scenario(topo::small_scenario_params(11));
  auto first_slices = add_tagged_tenants(*first);
  auto second_slices = add_tagged_tenants(*second);
  for (const std::string& name : faults::fault_plan_names()) {
    faults::FaultScenario a = faults::make_fault_plan(name, *first, 5);
    faults::FaultScenario b = faults::make_fault_plan(name, *second, 5);
    EXPECT_FALSE(a.events.empty()) << name;
    EXPECT_EQ(plan_signature(a), plan_signature(b)) << name;
    EXPECT_EQ(a.name, name);
    EXPECT_EQ(a.seed, 5u);
  }
}

TEST(FaultPlans, SeedSelectsTargets) {
  auto scenario = topo::build_scenario(topo::small_scenario_params(11));
  bool any_differs = false;
  for (std::uint64_t seed = 2; seed < 8 && !any_differs; ++seed) {
    faults::FaultScenario a = faults::make_fault_plan("mixed", *scenario, 1);
    faults::FaultScenario b = faults::make_fault_plan("mixed", *scenario, seed);
    any_differs = plan_signature(a) != plan_signature(b);
  }
  EXPECT_TRUE(any_differs) << "--fault-seed never changed the mixed plan's targets";
}

TEST(FaultPlans, UnknownNameYieldsEmptyPlan) {
  auto scenario = topo::build_scenario(topo::small_scenario_params(11));
  EXPECT_TRUE(faults::make_fault_plan("no-such-plan", *scenario, 1).events.empty());
}

/// Small scenario + a live bearer probe per region; recovery runs fully
/// synchronously (no engine), the mode unit tests and debuggers use.
class FaultRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario = topo::build_scenario(topo::small_scenario_params(11));
    mp = scenario->mgmt.get();
  }

  void add_probe(faults::RecoveryCoordinator& coord, std::size_t region,
                 std::uint64_t ue_value) {
    BsGroupId group = scenario->partition.group_regions[region].front();
    BsId bs = scenario->net.bs_group(group)->members.front();
    apps::MobilityApp& mobility = scenario->apps->mobility(*mp->leaf_of_group(group));
    UeId ue{ue_value};
    ASSERT_TRUE(mobility.ue_attach(ue, bs).ok());
    apps::BearerRequest request;
    request.ue = ue;
    request.bs = bs;
    request.dst_prefix = PrefixId{17};
    ASSERT_TRUE(mobility.request_bearer(request).ok());
    coord.add_probe({ue, bs, request.dst_prefix});
  }

  std::unique_ptr<topo::Scenario> scenario;
  mgmt::ManagementPlane* mp = nullptr;
};

TEST_F(FaultRecoveryTest, MixedPlanConvergesSynchronously) {
  faults::RecoveryCoordinator coord(*scenario);
  coord.harden();
  add_probe(coord, 0, 1);
  add_probe(coord, 1, 2);
  ASSERT_EQ(coord.probe_failures(), 0u);

  faults::FaultInjector injector(*scenario);
  faults::FaultScenario plan = faults::make_fault_plan("mixed", *scenario, 1);
  ASSERT_GE(plan.events.size(), 5u);
  std::vector<faults::FaultRecord> records = injector.run(plan, coord);

  EXPECT_EQ(injector.injected(), plan.events.size());
  // Every event except the outage-opening switch crash completes a recovery.
  ASSERT_EQ(records.size(), plan.events.size() - 1);
  for (const faults::FaultRecord& rec : records) {
    EXPECT_EQ(rec.verify_findings, 0u) << rec.event.str();
    EXPECT_GT(rec.mttr_ms, 0.0) << rec.event.str();
    // The flat baseline serves the same load through one remote controller;
    // the recursive hierarchy must never model slower than it.
    EXPECT_LE(rec.mttr_ms, rec.mttr_flat_ms) << rec.event.str();
  }
  EXPECT_EQ(coord.probe_failures(), 0u);
  EXPECT_TRUE(mp->verify_data_plane().clean());

  const obs::Counter* injected = obs::default_registry().find_counter(
      "fault_injected_total", {{"kind", "link-down"}});
  ASSERT_NE(injected, nullptr);
  EXPECT_GE(injected->value(), 1u);
}

TEST_F(FaultRecoveryTest, SwitchCrashRestartMeasuresOutage) {
  faults::RecoveryCoordinator coord(*scenario);
  coord.harden();
  add_probe(coord, 0, 1);

  faults::FaultInjector injector(*scenario);
  faults::FaultScenario plan = faults::make_fault_plan("switch-crash", *scenario, 2);
  ASSERT_EQ(plan.events.size(), 2u);
  std::vector<faults::FaultRecord> records = injector.run(plan, coord);

  // The crash opens an outage (no record); the restart closes and measures it.
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event.kind, faults::FaultKind::kSwitchRestart);
  // crash@100ms -> restart@500ms: MTTR covers at least the 400 ms outage.
  EXPECT_GE(records[0].mttr_ms, 400.0);
  EXPECT_EQ(records[0].verify_findings, 0u);
  EXPECT_EQ(coord.probe_failures(), 0u);
  EXPECT_TRUE(mp->verify_data_plane().clean());
}

TEST_F(FaultRecoveryTest, ImpairedChannelRecoversThroughRetries) {
  faults::RecoveryCoordinator coord(*scenario);
  coord.harden();
  add_probe(coord, 0, 1);

  faults::FaultInjector injector(*scenario);
  faults::FaultScenario plan = faults::make_fault_plan("impair", *scenario, 3);
  ASSERT_EQ(plan.events.size(), 2u);
  std::vector<faults::FaultRecord> records = injector.run(plan, coord);

  ASSERT_EQ(records.size(), 2u);
  for (const faults::FaultRecord& rec : records)
    EXPECT_EQ(rec.verify_findings, 0u) << rec.event.str();
  EXPECT_EQ(coord.probe_failures(), 0u);
  EXPECT_TRUE(mp->verify_data_plane().clean());
}

}  // namespace
}  // namespace softmow
