// Mobility application unit tests over a hand-built two-region deployment
// (the Figure 5 shape): bearer lifecycle, idle/active cycling, handover
// statistics and handover-graph exposure mapping.
#include <gtest/gtest.h>

#include "softmow/softmow.h"

namespace softmow::apps {
namespace {

class MobilityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    s1 = net.add_switch({0, 0});
    s2 = net.add_switch({1, 0});
    s3 = net.add_switch({2, 0});
    s4 = net.add_switch({3, 0});
    (void)net.connect(s1, s2);
    (void)net.connect(s2, s3);
    (void)net.connect(s3, s4);
    group_a = net.add_bs_group(s1, dataplane::BsGroupTopology::kRing, {0, 1});
    group_b = net.add_bs_group(s2, dataplane::BsGroupTopology::kRing, {1, 1});
    group_c = net.add_bs_group(s4, dataplane::BsGroupTopology::kRing, {3, 1});
    bs_a = net.add_base_station(group_a, {0, 1});
    bs_b = net.add_base_station(group_b, {1, 1});
    bs_c = net.add_base_station(group_c, {3, 1});
    egress_west = net.add_egress(s1, {0, -1});
    egress_east = net.add_egress(s4, {3, -1});

    mgmt::HierarchySpec spec;
    spec.leaves.push_back(mgmt::RegionSpec{"west", {s1, s2}, {group_a, group_b}});
    spec.leaves.push_back(mgmt::RegionSpec{"east", {s3, s4}, {group_c}});
    spec.group_adjacency.add(group_a, group_b, 5.0);
    spec.group_adjacency.add(group_b, group_c, 7.0);
    mp = std::make_unique<mgmt::ManagementPlane>(&net);
    mp->bootstrap(spec);
    suite = std::make_unique<AppSuite>(*mp);

    provider.cost_map[{egress_west, PrefixId{1}}] = ExternalCost{10, 20000};
    provider.cost_map[{egress_east, PrefixId{1}}] = ExternalCost{10, 20000};
    provider.cost_map[{egress_east, PrefixId{2}}] = ExternalCost{4, 8000};
    suite->originate_interdomain(provider);
  }

  struct MapProvider : ExternalPathProvider {
    std::map<std::pair<EgressId, PrefixId>, ExternalCost> cost_map;
    std::vector<PrefixId> prefixes() const override { return {PrefixId{1}, PrefixId{2}}; }
    std::optional<ExternalCost> cost(EgressId e, PrefixId p) const override {
      auto it = cost_map.find({e, p});
      if (it == cost_map.end()) return std::nullopt;
      return it->second;
    }
  } provider;

  MobilityApp& west() { return suite->mobility(mp->leaf(0)); }
  MobilityApp& east() { return suite->mobility(mp->leaf(1)); }
  MobilityApp& root() { return suite->mobility(mp->root()); }

  BearerRequest request_for(UeId ue, BsId bs, PrefixId prefix = PrefixId{1}) {
    BearerRequest r;
    r.ue = ue;
    r.bs = bs;
    r.dst_prefix = prefix;
    return r;
  }

  dataplane::PhysicalNetwork net;
  SwitchId s1, s2, s3, s4;
  BsGroupId group_a, group_b, group_c;
  BsId bs_a, bs_b, bs_c;
  EgressId egress_west, egress_east;
  std::unique_ptr<mgmt::ManagementPlane> mp;
  std::unique_ptr<AppSuite> suite;
};

TEST_F(MobilityFixture, AttachDetachLifecycle) {
  EXPECT_EQ(west().ue_attach(UeId{1}, bs_a).code(), ErrorCode::kUnknown);
  EXPECT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  EXPECT_EQ(west().ue_count(), 1u);
  EXPECT_EQ(west().ue(UeId{1})->group, group_a);
  EXPECT_EQ(west().stats().ue_arrivals, 2u);
  EXPECT_TRUE(west().ue_detach(UeId{1}).ok());
  EXPECT_EQ(west().ue(UeId{1}), nullptr);
  EXPECT_EQ(west().ue_detach(UeId{1}).code(), ErrorCode::kNotFound);
  EXPECT_EQ(west().ue_attach(UeId{2}, BsId{999}).code(), ErrorCode::kNotFound);
}

TEST_F(MobilityFixture, LocalBearerServedInRegion) {
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  auto bearer = west().request_bearer(request_for(UeId{1}, bs_a));
  ASSERT_TRUE(bearer.ok());
  const BearerRecord& rec = west().ue(UeId{1})->bearers.at(*bearer);
  EXPECT_TRUE(rec.handled_locally);
  EXPECT_EQ(rec.handled_level, 1);
  EXPECT_EQ(west().stats().bearers_local, 1u);
  EXPECT_EQ(west().stats().bearers_delegated, 0u);
}

TEST_F(MobilityFixture, BearerForUnattachedUeFails) {
  EXPECT_EQ(west().request_bearer(request_for(UeId{9}, bs_a)).code(),
            ErrorCode::kNotFound);
}

TEST_F(MobilityFixture, PrefixOnlyReachableElsewhereIsDelegated) {
  // Prefix 2 has an interdomain route only at the east egress: the west
  // leaf cannot serve it and must delegate to the root (§5.1).
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  auto bearer = west().request_bearer(request_for(UeId{1}, bs_a, PrefixId{2}));
  ASSERT_TRUE(bearer.ok()) << bearer.error().message;
  const BearerRecord& rec = west().ue(UeId{1})->bearers.at(*bearer);
  EXPECT_FALSE(rec.handled_locally);
  EXPECT_EQ(rec.handled_level, 2);
  EXPECT_NE(rec.ancestor_key, 0u);
  EXPECT_EQ(west().stats().bearers_delegated, 1u);

  Packet pkt;
  pkt.ue = UeId{1};
  pkt.dst_prefix = PrefixId{2};
  auto report = net.inject_uplink(pkt, bs_a);
  EXPECT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal);
  EXPECT_EQ(report.egress, egress_east);
}

TEST_F(MobilityFixture, IdleDeactivatesAndActiveRestoresLocalBearer) {
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  ASSERT_TRUE(west().request_bearer(request_for(UeId{1}, bs_a)).ok());
  std::size_t rules_active = net.total_rules();
  ASSERT_GT(rules_active, 0u);

  ASSERT_TRUE(west().ue_idle(UeId{1}).ok());
  EXPECT_EQ(net.total_rules(), 0u);
  Packet pkt;
  pkt.ue = UeId{1};
  pkt.dst_prefix = PrefixId{1};
  EXPECT_EQ(net.inject_uplink(pkt, bs_a).outcome,
            dataplane::DeliveryReport::Outcome::kToController);

  ASSERT_TRUE(west().ue_active(UeId{1}).ok());
  EXPECT_EQ(net.total_rules(), rules_active);
  EXPECT_EQ(net.inject_uplink(pkt, bs_a).outcome,
            dataplane::DeliveryReport::Outcome::kExternal);
}

TEST_F(MobilityFixture, IdleTearsDownAncestorBearerToo) {
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  ASSERT_TRUE(west().request_bearer(request_for(UeId{1}, bs_a, PrefixId{2})).ok());
  ASSERT_GT(net.total_rules(), 0u);
  ASSERT_TRUE(west().ue_idle(UeId{1}).ok());
  EXPECT_EQ(net.total_rules(), 0u);  // the root's path was deactivated via key
}

TEST_F(MobilityFixture, DetachCleansEverything) {
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  ASSERT_TRUE(west().request_bearer(request_for(UeId{1}, bs_a)).ok());
  ASSERT_TRUE(west().request_bearer(request_for(UeId{1}, bs_a, PrefixId{2})).ok());
  ASSERT_TRUE(west().ue_detach(UeId{1}).ok());
  EXPECT_EQ(net.total_rules(), 0u);
}

TEST_F(MobilityFixture, IntraRegionHandoverStatsAndLog) {
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  ASSERT_TRUE(west().request_bearer(request_for(UeId{1}, bs_a)).ok());
  ASSERT_TRUE(west().handover(UeId{1}, bs_b).ok());
  EXPECT_EQ(west().stats().intra_region_handovers, 1u);
  EXPECT_EQ(west().ue(UeId{1})->group, group_b);
  EXPECT_DOUBLE_EQ(west().handover_log().weight(mgmt::gbs_id_for_group(group_a),
                                                mgmt::gbs_id_for_group(group_b)),
                   1.0);
  // The bearer still delivers from the new group.
  Packet pkt;
  pkt.ue = UeId{1};
  pkt.dst_prefix = PrefixId{1};
  EXPECT_EQ(net.inject_uplink(pkt, bs_b).outcome,
            dataplane::DeliveryReport::Outcome::kExternal);
}

TEST_F(MobilityFixture, InterRegionHandoverMovesState) {
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_b).ok());
  ASSERT_TRUE(west().request_bearer(request_for(UeId{1}, bs_b)).ok());
  ASSERT_TRUE(west().handover(UeId{1}, bs_c).ok());
  EXPECT_EQ(west().ue(UeId{1}), nullptr);
  ASSERT_NE(east().ue(UeId{1}), nullptr);
  EXPECT_EQ(east().ue(UeId{1})->bearers.size(), 1u);
  EXPECT_EQ(root().stats().inter_region_handled, 1u);
  EXPECT_EQ(west().stats().handovers_delegated, 1u);
}

TEST_F(MobilityFixture, HandoverToUnknownBsFails) {
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  EXPECT_EQ(west().handover(UeId{1}, BsId{404}).code(), ErrorCode::kNotFound);
}

TEST_F(MobilityFixture, ExposedHandoverGraphCollapsesInternalGroups) {
  // a<->b is internal to west; b<->c crosses. In west's exposed view, the
  // internal edge collapses onto the aggregate only if a or b is internal.
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  ASSERT_TRUE(west().handover(UeId{1}, bs_b).ok());  // intra
  auto exposed = west().exposed_handover_graph();
  // group_a is internal (only neighbor is b, same region)... a's neighbors:
  // b (west). So a is internal; b neighbors c (east): border.
  GBsId agg = reca::internal_gbs_id_for(mp->leaf(0).id());
  EXPECT_DOUBLE_EQ(exposed.weight(agg, mgmt::gbs_id_for_group(group_b)), 1.0);
}

TEST_F(MobilityFixture, CollectHandoverGraphAggregatesSubtree) {
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_b).ok());
  ASSERT_TRUE(west().handover(UeId{1}, bs_c).ok());  // inter via root
  auto collected = root().collect_handover_graph();
  // The root's own log plus the leaves' logs, with the cross edge present.
  EXPECT_GE(collected.weight(mgmt::gbs_id_for_group(group_b),
                             mgmt::gbs_id_for_group(group_c)),
            1.0);
}

TEST_F(MobilityFixture, ReactiveBearerFromPacketIn) {
  west().enable_reactive_bearers();
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  // No bearer yet: the uplink packet misses at the access switch and punts;
  // the mobility app reacts by setting up a default bearer.
  Packet pkt;
  pkt.ue = UeId{1};
  pkt.dst_prefix = PrefixId{1};
  auto miss = net.inject_uplink(pkt, bs_a);
  ASSERT_EQ(miss.outcome, dataplane::DeliveryReport::Outcome::kToController);
  mp->hub().deliver_packet_ins(miss);
  EXPECT_EQ(west().reactive_bearers(), 1u);
  EXPECT_EQ(west().ue(UeId{1})->bearers.size(), 1u);

  auto retry = net.inject_uplink(pkt, bs_a);
  EXPECT_EQ(retry.outcome, dataplane::DeliveryReport::Outcome::kExternal);

  // A second miss for the same flow does not duplicate the bearer.
  mp->hub().deliver_packet_ins(miss);
  EXPECT_EQ(west().reactive_bearers(), 1u);

  // Unknown UEs are ignored.
  Packet stranger;
  stranger.ue = UeId{42};
  stranger.dst_prefix = PrefixId{1};
  auto other = net.inject_uplink(stranger, bs_a);
  mp->hub().deliver_packet_ins(other);
  EXPECT_EQ(west().reactive_bearers(), 1u);
}

TEST_F(MobilityFixture, GroupStateExtractAbsorb) {
  ASSERT_TRUE(west().ue_attach(UeId{1}, bs_a).ok());
  ASSERT_TRUE(west().ue_attach(UeId{2}, bs_b).ok());
  auto moved = west().extract_group_state(group_a);
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].ue, UeId{1});
  EXPECT_EQ(west().ue_count(), 1u);
  east().absorb_group_state(std::move(moved));
  EXPECT_NE(east().ue(UeId{1}), nullptr);
}

}  // namespace
}  // namespace softmow::apps
