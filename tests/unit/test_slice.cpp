// The slicing subsystem: tenant registration, deterministic provisioning,
// admission control against per-slice budget shares, cross-tenant ownership
// enforcement, and the encapsulation switch (tags vs §4.3 labels).
#include <gtest/gtest.h>

#include <memory>

#include "softmow/softmow.h"

namespace softmow {
namespace {

class SliceManagerTest : public ::testing::Test {
 protected:
  void SetUp() override { scenario = topo::build_scenario(topo::small_scenario_params(11)); }

  std::unique_ptr<slice::SliceManager> make_manager(
      slice::EncapMode mode, double budget_kbps = 4.0e6) {
    slice::SliceManager::Options opts;
    opts.encap = mode;
    opts.bearer_budget_kbps = budget_kbps;
    return std::make_unique<slice::SliceManager>(*scenario, opts);
  }

  SliceId add(slice::SliceManager& mgr, const char* name, double share = 0.5) {
    slice::SliceSpec spec;
    spec.name = name;
    spec.share = share;
    auto id = mgr.add_slice(spec);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  std::unique_ptr<topo::Scenario> scenario;
};

TEST_F(SliceManagerTest, SliceIdsAreDenseAndCapped) {
  auto mgr = make_manager(slice::EncapMode::kTags);
  for (std::uint64_t i = 0; i < dataplane::PolicyTag::kMaxSlices; ++i) {
    slice::SliceSpec spec;
    // Built in one shot: GCC 12's -O3 inliner raises a spurious -Wrestrict
    // on append-after-assign here.
    spec.name = "t" + std::to_string(i);
    spec.share = 1.0 / 32;
    auto id = mgr->add_slice(spec);
    ASSERT_TRUE(id.ok()) << i;
    EXPECT_EQ(id->value, i);
  }
  slice::SliceSpec overflow;
  overflow.name = "one-too-many";
  auto id = mgr->add_slice(overflow);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.code(), ErrorCode::kExhausted);
}

TEST_F(SliceManagerTest, RejectsNonPositiveShare) {
  auto mgr = make_manager(slice::EncapMode::kTags);
  slice::SliceSpec spec;
  spec.name = "zero";
  spec.share = 0;
  auto id = mgr->add_slice(spec);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.code(), ErrorCode::kInvalidArgument);
}

TEST_F(SliceManagerTest, ProvisionAttachesDisjointSubscriberNamespaces) {
  auto mgr = make_manager(slice::EncapMode::kTags);
  SliceId a = add(*mgr, "a");
  SliceId b = add(*mgr, "b");
  ASSERT_EQ(*mgr->provision(a, 3), 3u);
  ASSERT_EQ(*mgr->provision(b, 3), 3u);
  EXPECT_EQ(mgr->subscribers(a).size(), 3u);
  for (UeId ue : mgr->subscribers(a)) {
    EXPECT_EQ(mgr->ue_slices().at(ue), a);
    for (UeId other : mgr->subscribers(b)) EXPECT_NE(ue, other);
  }
  // Provisioning is deterministic: a second manager over an identically
  // built scenario attaches the same UEs.
  auto scenario2 = topo::build_scenario(topo::small_scenario_params(11));
  slice::SliceManager mgr2(*scenario2, slice::SliceManager::Options{});
  SliceId a2 = add(mgr2, "a");
  ASSERT_EQ(*mgr2.provision(a2, 3), 3u);
  EXPECT_EQ(mgr2.subscribers(a2), mgr->subscribers(a));
}

TEST_F(SliceManagerTest, OpenBearerStampsSliceTagOnClassifier) {
  auto mgr = make_manager(slice::EncapMode::kTags);
  SliceId id = add(*mgr, "tagged");
  ASSERT_EQ(*mgr->provision(id, 1), 1u);
  UeId ue = mgr->subscribers(id).front();
  auto bearer = mgr->open_bearer(id, ue, PrefixId{17}, apps::ApplicationClass::kDefault);
  ASSERT_TRUE(bearer.ok());

  // The access classifier for this UE must apply a policy tag that decodes
  // back to the owning slice.
  bool found = false;
  for (SwitchId sw_id : scenario->net.all_switches()) {
    const dataplane::Switch* sw = scenario->net.sw(sw_id);
    if (sw == nullptr) continue;
    for (const dataplane::FlowRule& rule : sw->table().rules()) {
      if (!rule.match.ue || !(*rule.match.ue == ue)) continue;
      for (const dataplane::Action& a : rule.actions) {
        if (a.type != dataplane::ActionType::kPushLabel &&
            a.type != dataplane::ActionType::kSwapLabel)
          continue;
        auto tag = dataplane::decode_tag(a.label.value);
        if (!tag) continue;
        EXPECT_EQ(tag->slice, id);
        EXPECT_EQ(tag->clause,
                  slice::clause_for(mgr->spec(id).tier, apps::ApplicationClass::kDefault));
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << "no policy-tagged classifier installed for the bearer";

  slice::SliceStats stats = mgr->stats(id);
  EXPECT_EQ(stats.bearers_admitted, 1u);
  EXPECT_GT(stats.reserved_kbps, 0.0);
  EXPECT_FALSE(stats.bearers_by_level.empty());
}

TEST_F(SliceManagerTest, LabelModeInstallsNoTags) {
  auto mgr = make_manager(slice::EncapMode::kLabels);
  SliceId id = add(*mgr, "plain");
  ASSERT_EQ(*mgr->provision(id, 1), 1u);
  ASSERT_TRUE(mgr->open_bearer(id, mgr->subscribers(id).front(), PrefixId{17}).ok());
  for (SwitchId sw_id : scenario->net.all_switches()) {
    const dataplane::Switch* sw = scenario->net.sw(sw_id);
    if (sw == nullptr) continue;
    for (const dataplane::FlowRule& rule : sw->table().rules()) {
      for (const dataplane::Action& a : rule.actions) {
        if (a.type == dataplane::ActionType::kPushLabel ||
            a.type == dataplane::ActionType::kSwapLabel) {
          EXPECT_FALSE(dataplane::is_policy_tag(a.label)) << sw_id.str();
        }
      }
    }
  }
}

TEST_F(SliceManagerTest, CrossSliceBearerIsPermissionError) {
  auto mgr = make_manager(slice::EncapMode::kTags);
  SliceId a = add(*mgr, "a");
  SliceId b = add(*mgr, "b");
  ASSERT_EQ(*mgr->provision(a, 1), 1u);
  ASSERT_EQ(*mgr->provision(b, 1), 1u);
  auto stolen = mgr->open_bearer(b, mgr->subscribers(a).front(), PrefixId{17});
  ASSERT_FALSE(stolen.ok());
  EXPECT_EQ(stolen.code(), ErrorCode::kPermission);
  EXPECT_EQ(mgr->stats(b).bearers_admitted, 0u);
}

TEST_F(SliceManagerTest, AdmissionControlRejectsOverBudget) {
  // Budget fits exactly one default bearer (500 kbps) at share 1.0.
  auto mgr = make_manager(slice::EncapMode::kTags, /*budget_kbps=*/600);
  SliceId id = add(*mgr, "tight", /*share=*/1.0);
  ASSERT_EQ(*mgr->provision(id, 2), 2u);
  const auto& subs = mgr->subscribers(id);
  ASSERT_TRUE(
      mgr->open_bearer(id, subs[0], PrefixId{17}, apps::ApplicationClass::kDefault).ok());
  auto second =
      mgr->open_bearer(id, subs[1], PrefixId{18}, apps::ApplicationClass::kDefault);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), ErrorCode::kExhausted);
  slice::SliceStats stats = mgr->stats(id);
  EXPECT_EQ(stats.bearers_admitted, 1u);
  EXPECT_EQ(stats.bearers_rejected, 1u);
}

TEST_F(SliceManagerTest, CloseBearerReleasesBudget) {
  auto mgr = make_manager(slice::EncapMode::kTags, /*budget_kbps=*/600);
  SliceId id = add(*mgr, "churn", /*share=*/1.0);
  ASSERT_EQ(*mgr->provision(id, 1), 1u);
  UeId ue = mgr->subscribers(id).front();
  auto bearer = mgr->open_bearer(id, ue, PrefixId{17}, apps::ApplicationClass::kDefault);
  ASSERT_TRUE(bearer.ok());
  EXPECT_GT(mgr->stats(id).reserved_kbps, 0.0);

  ASSERT_TRUE(mgr->close_bearer(id, ue, *bearer).ok());
  EXPECT_EQ(mgr->stats(id).reserved_kbps, 0.0);
  auto again = mgr->close_bearer(id, ue, *bearer);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), ErrorCode::kNotFound);

  // The released budget admits a fresh bearer.
  EXPECT_TRUE(
      mgr->open_bearer(id, ue, PrefixId{18}, apps::ApplicationClass::kDefault).ok());
}

TEST_F(SliceManagerTest, UnknownSliceAndUnprovisionedUeAreTyped) {
  auto mgr = make_manager(slice::EncapMode::kTags);
  auto bad_slice = mgr->open_bearer(SliceId{99}, UeId{1}, PrefixId{17});
  ASSERT_FALSE(bad_slice.ok());
  EXPECT_EQ(bad_slice.code(), ErrorCode::kNotFound);

  SliceId id = add(*mgr, "a");
  auto bad_ue = mgr->open_bearer(id, UeId{424242}, PrefixId{17});
  ASSERT_FALSE(bad_ue.ok());
  EXPECT_EQ(bad_ue.code(), ErrorCode::kPermission);
}

TEST_F(SliceManagerTest, BlockedTierIsRejectedByAuthorization) {
  auto mgr = make_manager(slice::EncapMode::kTags);
  slice::SliceSpec spec;
  spec.name = "blocked";
  spec.tier = apps::SubscriberClass::kBlocked;
  SliceId id = *mgr->add_slice(spec);
  ASSERT_EQ(*mgr->provision(id, 1), 1u);
  auto bearer = mgr->open_bearer(id, mgr->subscribers(id).front(), PrefixId{17});
  ASSERT_FALSE(bearer.ok());
  EXPECT_EQ(bearer.code(), ErrorCode::kPermission);
  EXPECT_EQ(mgr->stats(id).bearers_admitted, 0u);
}

TEST(SliceClauses, ClauseStaysInsideTagWidth) {
  for (auto tier : {apps::SubscriberClass::kBasic, apps::SubscriberClass::kPremium}) {
    for (auto app : {apps::ApplicationClass::kDefault, apps::ApplicationClass::kVoip,
                     apps::ApplicationClass::kVideo, apps::ApplicationClass::kBulk}) {
      EXPECT_LT(slice::clause_for(tier, app), dataplane::PolicyTag::kMaxClauses);
    }
  }
}

}  // namespace
}  // namespace softmow
