#include <gtest/gtest.h>

#include <algorithm>

#include "core/graph.h"
#include "core/rng.h"

namespace softmow {
namespace {

EdgeMetrics metrics(double latency, double hops = 1.0, double bw = 1e6) {
  return EdgeMetrics{latency, hops, bw};
}

TEST(Graph, AddAndQueryNodesEdges) {
  Graph g;
  g.add_node(1);
  g.add_node(1);  // idempotent
  EXPECT_EQ(g.node_count(), 1u);
  EdgeKey e = g.add_edge(1, 2, metrics(10));
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_NE(g.edge(e), nullptr);
  EXPECT_EQ(g.edge(e)->from, 1u);
  EXPECT_EQ(g.edge(e)->to, 2u);
  EXPECT_EQ(g.edge(999), nullptr);
}

TEST(Graph, BidirectionalAddsTwoEdges) {
  Graph g;
  auto [ab, ba] = g.add_bidirectional(1, 2, metrics(5));
  EXPECT_NE(ab, ba);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.edge(ab)->from, 1u);
  EXPECT_EQ(g.edge(ba)->from, 2u);
}

TEST(Graph, ShortestPathPicksMinLatency) {
  Graph g;
  g.add_edge(1, 2, metrics(10));
  g.add_edge(2, 3, metrics(10));
  g.add_edge(1, 3, metrics(30));
  auto path = g.shortest_path(1, 3, Metric::kLatency);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->nodes, (std::vector<NodeKey>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(path->metrics.latency_us, 20);
  EXPECT_DOUBLE_EQ(path->metrics.hop_count, 2);
}

TEST(Graph, ShortestPathPicksMinHops) {
  Graph g;
  g.add_edge(1, 2, metrics(10));
  g.add_edge(2, 3, metrics(10));
  g.add_edge(1, 3, metrics(30));
  auto path = g.shortest_path(1, 3, Metric::kHops);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->nodes, (std::vector<NodeKey>{1, 3}));
}

TEST(Graph, TrivialPathWhenSourceEqualsDestination) {
  Graph g;
  g.add_node(7);
  auto path = g.shortest_path(7, 7, Metric::kHops);
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->edges.empty());
  EXPECT_EQ(path->nodes, (std::vector<NodeKey>{7}));
  EXPECT_DOUBLE_EQ(path->metrics.hop_count, 0);
}

TEST(Graph, NoPathReturnsNotFound) {
  Graph g;
  g.add_node(1);
  g.add_node(2);
  auto path = g.shortest_path(1, 2, Metric::kHops);
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.code(), ErrorCode::kNotFound);
}

TEST(Graph, MissingNodesReturnNotFound) {
  Graph g;
  g.add_node(1);
  EXPECT_FALSE(g.shortest_path(1, 99, Metric::kHops).ok());
  EXPECT_FALSE(g.shortest_path(99, 1, Metric::kHops).ok());
}

TEST(Graph, DownEdgeIsAvoided) {
  Graph g;
  EdgeKey direct = g.add_edge(1, 3, metrics(5));
  g.add_edge(1, 2, metrics(10));
  g.add_edge(2, 3, metrics(10));
  ASSERT_TRUE(g.set_edge_up(direct, false).ok());
  auto path = g.shortest_path(1, 3, Metric::kLatency);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->nodes.size(), 3u);
  ASSERT_TRUE(g.set_edge_up(direct, true).ok());
  path = g.shortest_path(1, 3, Metric::kLatency);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->nodes.size(), 2u);
}

TEST(Graph, SetEdgeUpOnMissingEdgeFails) {
  Graph g;
  EXPECT_EQ(g.set_edge_up(42, false).code(), ErrorCode::kNotFound);
}

TEST(Graph, BandwidthFloorFiltersEdges) {
  Graph g;
  g.add_edge(1, 2, metrics(1, 1, /*bw=*/100));
  g.add_edge(1, 3, metrics(5, 1, /*bw=*/1000));
  g.add_edge(3, 2, metrics(5, 1, /*bw=*/1000));
  PathConstraints c;
  c.min_bandwidth_kbps = 500;
  auto path = g.shortest_path(1, 2, Metric::kLatency, c);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->nodes, (std::vector<NodeKey>{1, 3, 2}));
  EXPECT_GE(path->metrics.bandwidth_kbps, 500);
}

TEST(Graph, MaxHopConstraintFallsBackToHopOptimalPath) {
  Graph g;
  // Latency-optimal path has 3 hops; a 1-hop alternative exists.
  g.add_edge(1, 2, metrics(1));
  g.add_edge(2, 3, metrics(1));
  g.add_edge(3, 4, metrics(1));
  g.add_edge(1, 4, metrics(100));
  PathConstraints c;
  c.max_hops = 2;
  auto path = g.shortest_path(1, 4, Metric::kLatency, c);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->metrics.hop_count, 1);
}

TEST(Graph, UnsatisfiableConstraintsReported) {
  Graph g;
  g.add_edge(1, 2, metrics(10));
  PathConstraints c;
  c.max_latency_us = 5;
  auto path = g.shortest_path(1, 2, Metric::kLatency, c);
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.code(), ErrorCode::kUnsatisfiable);
}

TEST(Graph, TieBreakOnSecondaryMetric) {
  Graph g;
  // Two equal-latency paths; one has fewer hops.
  g.add_edge(1, 2, metrics(10, 1));
  g.add_edge(2, 4, metrics(10, 1));
  g.add_edge(1, 3, metrics(5, 1));
  g.add_edge(3, 5, metrics(5, 1));
  g.add_edge(5, 4, metrics(10, 1));
  auto two_hop = g.shortest_path(1, 4, Metric::kLatency);
  ASSERT_TRUE(two_hop.ok());
  EXPECT_DOUBLE_EQ(two_hop->metrics.latency_us, 20);
  EXPECT_EQ(two_hop->edges.size(), 2u);  // prefers fewer hops on a tie
}

TEST(Graph, RemoveNodeRemovesIncidentEdges) {
  Graph g;
  g.add_bidirectional(1, 2, metrics(1));
  g.add_bidirectional(2, 3, metrics(1));
  g.remove_node(2);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_node(2));
  EXPECT_FALSE(g.shortest_path(1, 3, Metric::kHops).ok());
}

TEST(Graph, ShortestTreeMatchesPairwisePaths) {
  Graph g;
  Rng rng(5);
  std::vector<NodeKey> nodes;
  for (NodeKey n = 0; n < 20; ++n) {
    nodes.push_back(n);
    g.add_node(n);
  }
  for (int e = 0; e < 60; ++e) {
    NodeKey a = rng.uniform_u64(0, 19), b = rng.uniform_u64(0, 19);
    if (a == b) continue;
    g.add_edge(a, b, metrics(rng.uniform(1, 10)));
  }
  auto tree = g.shortest_tree(0, Metric::kLatency);
  for (NodeKey n : nodes) {
    auto direct = g.shortest_path(0, n, Metric::kLatency);
    if (direct.ok()) {
      ASSERT_TRUE(tree.contains(n)) << n;
      EXPECT_NEAR(tree.at(n).latency_us, direct->metrics.latency_us, 1e-9) << n;
    } else {
      EXPECT_FALSE(tree.contains(n));
    }
  }
}

TEST(Graph, KShortestPathsAreSortedLoopFreeAndDistinct) {
  Graph g;
  Rng rng(9);
  for (NodeKey n = 0; n < 12; ++n) g.add_node(n);
  for (int e = 0; e < 40; ++e) {
    NodeKey a = rng.uniform_u64(0, 11), b = rng.uniform_u64(0, 11);
    if (a == b) continue;
    g.add_edge(a, b, metrics(rng.uniform(1, 10)));
  }
  auto paths = g.k_shortest_paths(0, 11, 6, Metric::kLatency);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    // Loop-free.
    auto nodes = paths[i].nodes;
    std::sort(nodes.begin(), nodes.end());
    EXPECT_EQ(std::adjacent_find(nodes.begin(), nodes.end()), nodes.end());
    // Sorted by cost.
    if (i > 0) {
      EXPECT_GE(paths[i].cost(Metric::kLatency), paths[i - 1].cost(Metric::kLatency));
    }
    // Distinct edge sequences.
    for (std::size_t j = 0; j < i; ++j) EXPECT_NE(paths[i].edges, paths[j].edges);
  }
  if (!paths.empty()) {
    auto best = g.shortest_path(0, 11, Metric::kLatency);
    ASSERT_TRUE(best.ok());
    EXPECT_DOUBLE_EQ(paths[0].cost(Metric::kLatency), best->cost(Metric::kLatency));
  }
}

TEST(Graph, ConnectedFromDetectsPartitions) {
  Graph g;
  g.add_bidirectional(1, 2, metrics(1));
  g.add_bidirectional(3, 4, metrics(1));
  EXPECT_FALSE(g.connected_from(1));
  g.add_bidirectional(2, 3, metrics(1));
  EXPECT_TRUE(g.connected_from(1));
}

// Property sweep: Dijkstra against Bellman-Ford style relaxation on random
// graphs of varying density.
class GraphRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphRandomTest, DijkstraMatchesBellmanFord) {
  Rng rng(GetParam());
  Graph g;
  const int n = 15;
  for (NodeKey v = 0; v < n; ++v) g.add_node(v);
  int edges = 20 + GetParam() * 7;
  for (int e = 0; e < edges; ++e) {
    NodeKey a = rng.uniform_u64(0, n - 1), b = rng.uniform_u64(0, n - 1);
    if (a == b) continue;
    g.add_edge(a, b, metrics(rng.uniform(1, 20)));
  }
  // Bellman-Ford reference.
  std::vector<double> dist(n, 1e18);
  dist[0] = 0;
  for (int round = 0; round < n; ++round) {
    for (const GraphEdge* e : g.all_edges()) {
      if (dist[e->from] + e->metrics.latency_us < dist[e->to])
        dist[e->to] = dist[e->from] + e->metrics.latency_us;
    }
  }
  for (NodeKey v = 1; v < n; ++v) {
    auto path = g.shortest_path(0, v, Metric::kLatency);
    if (dist[v] >= 1e18) {
      EXPECT_FALSE(path.ok()) << v;
    } else {
      ASSERT_TRUE(path.ok()) << v;
      EXPECT_NEAR(path->metrics.latency_us, dist[v], 1e-9) << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphRandomTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace softmow
