// Shared checkpoint format (mgmt/checkpoint.h): full capture/restore, the
// content-addressed delta log, and the HotStandby consumer. The same format
// feeds crash failover and planned migration, so these tests pin down the
// convergence contract both rely on: applying a delta to its base reproduces
// a fresh capture, and an unchanged controller produces an empty (cheap)
// delta.
#include "mgmt/checkpoint.h"

#include <gtest/gtest.h>

#include "mgmt/failover.h"
#include "softmow/softmow.h"

namespace softmow {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario = topo::build_scenario(topo::small_scenario_params());
    mp = scenario->mgmt.get();
    prefix = scenario->iplane->prefixes().front();
    // A BS homed in leaf 0, for mutating the leaf's path book mid-test.
    for (const auto& region : scenario->partition.group_regions) {
      for (BsGroupId group : region) {
        if (mp->leaf_of_group(group) != &mp->leaf(0)) continue;
        const auto* bs_group = scenario->net.bs_group(group);
        if (bs_group == nullptr || bs_group->members.empty()) continue;
        bs = bs_group->members.front();
        return;
      }
    }
    FAIL() << "no base station homed in leaf 0";
  }

  /// Installs one fresh bearer through leaf 0 — new paths, new labels, new
  /// cookies: every allocator and the path book move.
  void add_bearer(std::uint64_t ue_value) {
    auto& mobility = scenario->apps->mobility(mp->leaf(0));
    UeId ue{ue_value};
    ASSERT_TRUE(mobility.ue_attach(ue, bs).ok());
    apps::BearerRequest request;
    request.ue = ue;
    request.bs = bs;
    request.dst_prefix = prefix;
    ASSERT_TRUE(mobility.request_bearer(request).ok());
  }

  std::unique_ptr<topo::Scenario> scenario;
  mgmt::ManagementPlane* mp = nullptr;
  BsId bs{};
  PrefixId prefix{};
};

TEST_F(CheckpointTest, RestoreReproducesNonDerivableState) {
  reca::Controller& source = mp->leaf(0);
  add_bearer(70001);
  mgmt::Checkpoint ckpt = mgmt::capture_checkpoint(source);
  EXPECT_GT(ckpt.estimated_bytes(), 0u);
  EXPECT_FALSE(ckpt.devices.empty());

  reca::Controller restored(source.id(), 1, source.name(), mp->label_mode());
  mgmt::restore_checkpoint(restored, ckpt);

  auto src_gbs = source.nib().gbs_list();
  auto dst_gbs = restored.nib().gbs_list();
  EXPECT_EQ(std::vector<GBsId>(src_gbs.begin(), src_gbs.end()),
            std::vector<GBsId>(dst_gbs.begin(), dst_gbs.end()));
  EXPECT_EQ(restored.nib().external_route_count(), source.nib().external_route_count());
  // Devices are deliberately NOT adopted by restore — failover seizes them
  // as master, migration pre-warms them as parked standbys.
  EXPECT_TRUE(restored.devices().empty());
}

TEST_F(CheckpointTest, DeltaIsEmptyAndCheapWhenNothingChanged) {
  reca::Controller& source = mp->leaf(0);
  mgmt::Checkpoint base = mgmt::capture_checkpoint(source);
  mgmt::CheckpointDelta delta = mgmt::delta_since(base, source);
  EXPECT_TRUE(delta.empty());
  // An empty delta still carries the fixed header, but costs far less than
  // re-shipping the full checkpoint.
  EXPECT_LT(delta.estimated_bytes(), base.estimated_bytes());
}

TEST_F(CheckpointTest, ApplyingDeltaConvergesOnFreshCapture) {
  reca::Controller& source = mp->leaf(0);
  mgmt::Checkpoint base = mgmt::capture_checkpoint(source);

  add_bearer(70002);
  mgmt::CheckpointDelta delta = mgmt::delta_since(base, source);
  ASSERT_FALSE(delta.empty());
  // New bearer => new installed paths shipped individually, not a full dump.
  EXPECT_FALSE(delta.path_upserts.empty());
  EXPECT_LT(delta.estimated_bytes(), mgmt::capture_checkpoint(source).estimated_bytes());

  mgmt::apply_delta(base, delta);
  mgmt::Checkpoint fresh = mgmt::capture_checkpoint(source);
  EXPECT_EQ(base.nib_version, fresh.nib_version);
  EXPECT_EQ(base.devices, fresh.devices);
  EXPECT_EQ(base.border_gbs, fresh.border_gbs);
  EXPECT_EQ(base.estimated_bytes(), fresh.estimated_bytes());
  // The strongest form of convergence: after the roll-forward the next delta
  // finds nothing left to ship.
  EXPECT_TRUE(mgmt::delta_since(base, source).empty());
}

TEST_F(CheckpointTest, DeltaRoundsAccumulateAcrossRepeatedChanges) {
  reca::Controller& source = mp->leaf(0);
  mgmt::Checkpoint base = mgmt::capture_checkpoint(source);
  for (std::uint64_t i = 0; i < 3; ++i) {
    add_bearer(70010 + i);
    mgmt::CheckpointDelta delta = mgmt::delta_since(base, source);
    ASSERT_FALSE(delta.empty()) << "round " << i;
    mgmt::apply_delta(base, delta);
  }
  EXPECT_TRUE(mgmt::delta_since(base, source).empty());
  EXPECT_EQ(base.estimated_bytes(), mgmt::capture_checkpoint(source).estimated_bytes());
}

TEST_F(CheckpointTest, HotStandbySyncsShrinkToTheChangeRate) {
  reca::Controller& source = mp->leaf(0);
  // Construction performs the first sync: the whole state crosses the wire.
  mgmt::HotStandby standby(source, mp->hub());
  EXPECT_EQ(standby.checkpoints(), 1u);
  std::uint64_t full_bytes = standby.last_sync_bytes();
  EXPECT_EQ(full_bytes, standby.checkpoint().estimated_bytes());

  add_bearer(70020);
  standby.sync();
  EXPECT_EQ(standby.checkpoints(), 2u);
  // The second sync ships only the delta log, not the full state.
  EXPECT_GT(standby.last_sync_bytes(), 0u);
  EXPECT_LT(standby.last_sync_bytes(), full_bytes);
  // The stored checkpoint is rolled forward to the master's current state —
  // exactly what a migration would stream as its base.
  EXPECT_TRUE(mgmt::delta_since(standby.checkpoint(), source).empty());
}

TEST_F(CheckpointTest, StandbyPromotedFromDeltaSyncedCheckpointMatchesMaster) {
  reca::Controller& source = mp->leaf(0);
  mgmt::HotStandby standby(source, mp->hub());
  standby.sync();
  add_bearer(70030);
  standby.sync();  // delta path — promotion must see the post-change state

  std::size_t routes = source.nib().external_route_count();
  auto gbs_view = source.nib().gbs_list();
  std::vector<GBsId> gbs(gbs_view.begin(), gbs_view.end());

  auto promoted = standby.promote();
  ASSERT_NE(promoted, nullptr);
  EXPECT_EQ(promoted->id(), source.id());
  EXPECT_EQ(promoted->nib().external_route_count(), routes);
  auto promoted_gbs = promoted->nib().gbs_list();
  EXPECT_EQ(std::vector<GBsId>(promoted_gbs.begin(), promoted_gbs.end()), gbs);
}

}  // namespace
}  // namespace softmow
