// ShardedSimulator: window math, mailbox ordering, lookahead clamping, and
// equivalence with the sequential Simulator oracle.
#include "sim/sharded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace softmow::sim {
namespace {

TEST(ShardedSim, SingleShardRunsInScheduleOrder) {
  ShardedSimulator engine(1);
  std::vector<int> order;
  engine.schedule(0, Duration::millis(2), [&] { order.push_back(2); });
  engine.schedule(0, Duration::millis(1), [&] { order.push_back(1); });
  engine.schedule(0, Duration::millis(1), [&] { order.push_back(10); });  // FIFO tie
  engine.schedule(0, Duration::millis(3), [&] { order.push_back(3); });
  EXPECT_EQ(engine.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2, 3}));
  EXPECT_TRUE(engine.idle());
}

TEST(ShardedSim, OneShardMatchesSequentialSimulatorOracle) {
  // The same self-rescheduling workload on both engines must execute the
  // same number of events and reach the same final clock.
  auto drive = [](auto& eng, auto schedule) {
    std::uint64_t ticks = 0;
    std::function<void()> tick = [&] {
      if (++ticks < 50) schedule(Duration::millis(7), tick);
    };
    schedule(Duration::millis(7), tick);
    eng.run();
    return ticks;
  };

  Simulator seq;
  std::uint64_t seq_ticks =
      drive(seq, [&](Duration d, auto fn) { seq.schedule(d, fn); });

  ShardedSimulator sharded(1);
  std::uint64_t sharded_ticks =
      drive(sharded, [&](Duration d, auto fn) { sharded.schedule(0, d, fn); });

  EXPECT_EQ(seq_ticks, sharded_ticks);
  EXPECT_EQ(seq.now(), sharded.now(0));
  EXPECT_EQ(sharded.events_executed(), 50u);
}

TEST(ShardedSim, CrossShardPostDelaysByAtLeastLookahead) {
  ShardedSimulator::Options opts;
  opts.lookahead = Duration::millis(5);
  ShardedSimulator engine(2, opts);
  TimePoint delivered_at;
  engine.schedule(0, Duration::millis(1), [&] {
    // Zero-delay cross-shard post: must be clamped up to the lookahead.
    engine.post(1, Duration{}, [&] { delivered_at = engine.now(1); });
  });
  engine.run();
  EXPECT_EQ(delivered_at, TimePoint::zero() + Duration::millis(6));
  EXPECT_EQ(engine.lookahead_clamps(), 1u);
  EXPECT_EQ(engine.cross_shard_posts(), 1u);
}

TEST(ShardedSim, CrossShardPostAtOrBeyondLookaheadIsNotClamped) {
  ShardedSimulator::Options opts;
  opts.lookahead = Duration::millis(5);
  ShardedSimulator engine(2, opts);
  TimePoint delivered_at;
  engine.schedule(0, Duration::millis(1), [&] {
    engine.post(1, Duration::millis(9), [&] { delivered_at = engine.now(1); });
  });
  engine.run();
  EXPECT_EQ(delivered_at, TimePoint::zero() + Duration::millis(10));
  EXPECT_EQ(engine.lookahead_clamps(), 0u);
}

TEST(ShardedSim, MailboxDeliversInSenderOrderAtEqualTimes) {
  // Two senders race mail to shard 2 for the same delivery instant; the
  // barrier sorts by (when, src shard, src send-seq), so execution order is
  // shard 0's messages (in send order), then shard 1's — for any thread
  // count.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ShardedSimulator::Options opts;
    opts.threads = threads;
    opts.lookahead = Duration::millis(1);
    ShardedSimulator engine(3, opts);
    std::vector<std::string> order;
    engine.schedule(0, Duration{}, [&] {
      engine.post(2, Duration::millis(1), [&] { order.push_back("a0"); });
      engine.post(2, Duration::millis(1), [&] { order.push_back("a1"); });
    });
    engine.schedule(1, Duration{}, [&] {
      engine.post(2, Duration::millis(1), [&] { order.push_back("b0"); });
    });
    engine.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a0", "a1", "b0"})) << threads << " threads";
  }
}

TEST(ShardedSim, WindowNeverExecutesEventsPastHorizon) {
  // With lookahead L, a window starting at W may only run events < W + L.
  // An event at t=0 posting to its own shard at t=0.5L must run before the
  // neighbor's event at t=2L (windows advance monotonically).
  ShardedSimulator::Options opts;
  opts.lookahead = Duration::millis(10);
  ShardedSimulator engine(2, opts);
  std::vector<int> order;
  engine.schedule(0, Duration{}, [&] {
    order.push_back(0);
    engine.schedule(0, Duration::millis(5), [&] { order.push_back(1); });
  });
  engine.schedule(1, Duration::millis(20), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_GE(engine.windows_executed(), 2u);
}

TEST(ShardedSim, DeterministicAcrossThreadCounts) {
  // A ping-pong workload across 4 shards: the executed (shard, time, tag)
  // sequence collected per shard must be identical for 1, 2, and 8 threads.
  auto run_with = [](std::size_t threads) {
    ShardedSimulator::Options opts;
    opts.threads = threads;
    opts.lookahead = Duration::millis(1);
    ShardedSimulator engine(4, opts);
    std::vector<std::vector<std::string>> per_shard(4);
    for (std::size_t s = 0; s < 4; ++s) {
      engine.schedule(s, Duration::millis(static_cast<double>(s)), [&, s] {
        per_shard[s].push_back("start@" + std::to_string(engine.now(s).since_start().to_micros()));
        for (std::size_t peer = 0; peer < 4; ++peer) {
          if (peer == s) continue;
          engine.post(peer, Duration::millis(2), [&, s, peer] {
            per_shard[peer].push_back("from" + std::to_string(s) + "@" +
                                      std::to_string(engine.now(peer).since_start().to_micros()));
          });
        }
      });
    }
    engine.run();
    return per_shard;
  };
  auto baseline = run_with(1);
  EXPECT_EQ(run_with(2), baseline);
  EXPECT_EQ(run_with(8), baseline);
}

TEST(ShardedSim, ParallelExecutionActuallyUsesWorkers) {
  // Not a timing assertion — just that the pool path executes all events.
  ShardedSimulator::Options opts;
  opts.threads = 4;
  ShardedSimulator engine(8, opts);
  std::atomic<int> ran{0};
  for (std::size_t s = 0; s < 8; ++s)
    for (int i = 0; i < 100; ++i)
      engine.schedule(s, Duration::millis(i), [&] { ran.fetch_add(1); });
  EXPECT_EQ(engine.run(), 800u);
  EXPECT_EQ(ran.load(), 800);
}

TEST(ShardedSim, RunReturnsDeltaNotTotal) {
  ShardedSimulator engine(2);
  engine.schedule(0, Duration{}, [] {});
  EXPECT_EQ(engine.run(), 1u);
  engine.schedule(1, Duration{}, [] {});
  engine.schedule(1, Duration::millis(1), [] {});
  EXPECT_EQ(engine.run(), 2u);
  EXPECT_EQ(engine.events_executed(), 3u);
}

TEST(ShardedSim, ShardClocksNeverRegress) {
  ShardedSimulator::Options opts;
  opts.lookahead = Duration::millis(1);
  ShardedSimulator engine(2, opts);
  std::vector<TimePoint> times;
  engine.schedule(0, Duration::millis(3), [&] {
    times.push_back(engine.now(0));
    engine.post(1, Duration::millis(1), [&] { times.push_back(engine.now(1)); });
  });
  engine.schedule(1, Duration::millis(1), [&] { times.push_back(engine.now(1)); });
  engine.run();
  ASSERT_EQ(times.size(), 3u);
  // Windows execute in global time order: shard 1's 1ms event, shard 0's 3ms
  // event, then the cross-shard delivery at 4ms.
  EXPECT_EQ(times[0], TimePoint::zero() + Duration::millis(1));
  EXPECT_EQ(times[1], TimePoint::zero() + Duration::millis(3));
  EXPECT_EQ(times[2], TimePoint::zero() + Duration::millis(4));
}

}  // namespace
}  // namespace softmow::sim
