// ShardedSimulator: window math, mailbox ordering, lookahead clamping, and
// equivalence with the sequential Simulator oracle.
#include "sim/sharded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "obs/timeseries.h"
#include "sim/simulator.h"

namespace softmow::sim {
namespace {

TEST(ShardedSim, SingleShardRunsInScheduleOrder) {
  ShardedSimulator engine(1);
  std::vector<int> order;
  engine.schedule(0, Duration::millis(2), [&] { order.push_back(2); });
  engine.schedule(0, Duration::millis(1), [&] { order.push_back(1); });
  engine.schedule(0, Duration::millis(1), [&] { order.push_back(10); });  // FIFO tie
  engine.schedule(0, Duration::millis(3), [&] { order.push_back(3); });
  EXPECT_EQ(engine.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2, 3}));
  EXPECT_TRUE(engine.idle());
}

TEST(ShardedSim, OneShardMatchesSequentialSimulatorOracle) {
  // The same self-rescheduling workload on both engines must execute the
  // same number of events and reach the same final clock.
  auto drive = [](auto& eng, auto schedule) {
    std::uint64_t ticks = 0;
    std::function<void()> tick = [&] {
      if (++ticks < 50) schedule(Duration::millis(7), tick);
    };
    schedule(Duration::millis(7), tick);
    eng.run();
    return ticks;
  };

  Simulator seq;
  std::uint64_t seq_ticks =
      drive(seq, [&](Duration d, auto fn) { seq.schedule(d, fn); });

  ShardedSimulator sharded(1);
  std::uint64_t sharded_ticks =
      drive(sharded, [&](Duration d, auto fn) { sharded.schedule(0, d, fn); });

  EXPECT_EQ(seq_ticks, sharded_ticks);
  EXPECT_EQ(seq.now(), sharded.now(0));
  EXPECT_EQ(sharded.events_executed(), 50u);
}

TEST(ShardedSim, CrossShardPostDelaysByAtLeastLookahead) {
  ShardedSimulator::Options opts;
  opts.lookahead = Duration::millis(5);
  ShardedSimulator engine(2, opts);
  TimePoint delivered_at;
  engine.schedule(0, Duration::millis(1), [&] {
    // Zero-delay cross-shard post: must be clamped up to the lookahead.
    engine.post(1, Duration{}, [&] { delivered_at = engine.now(1); });
  });
  engine.run();
  EXPECT_EQ(delivered_at, TimePoint::zero() + Duration::millis(6));
  EXPECT_EQ(engine.lookahead_clamps(), 1u);
  EXPECT_EQ(engine.cross_shard_posts(), 1u);
}

TEST(ShardedSim, CrossShardPostAtOrBeyondLookaheadIsNotClamped) {
  ShardedSimulator::Options opts;
  opts.lookahead = Duration::millis(5);
  ShardedSimulator engine(2, opts);
  TimePoint delivered_at;
  engine.schedule(0, Duration::millis(1), [&] {
    engine.post(1, Duration::millis(9), [&] { delivered_at = engine.now(1); });
  });
  engine.run();
  EXPECT_EQ(delivered_at, TimePoint::zero() + Duration::millis(10));
  EXPECT_EQ(engine.lookahead_clamps(), 0u);
}

TEST(ShardedSim, MailboxDeliversInSenderOrderAtEqualTimes) {
  // Two senders race mail to shard 2 for the same delivery instant; the
  // barrier sorts by (when, src shard, src send-seq), so execution order is
  // shard 0's messages (in send order), then shard 1's — for any thread
  // count.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ShardedSimulator::Options opts;
    opts.threads = threads;
    opts.lookahead = Duration::millis(1);
    ShardedSimulator engine(3, opts);
    std::vector<std::string> order;
    engine.schedule(0, Duration{}, [&] {
      engine.post(2, Duration::millis(1), [&] { order.push_back("a0"); });
      engine.post(2, Duration::millis(1), [&] { order.push_back("a1"); });
    });
    engine.schedule(1, Duration{}, [&] {
      engine.post(2, Duration::millis(1), [&] { order.push_back("b0"); });
    });
    engine.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a0", "a1", "b0"})) << threads << " threads";
  }
}

TEST(ShardedSim, WindowNeverExecutesEventsPastHorizon) {
  // With lookahead L, a window starting at W may only run events < W + L.
  // An event at t=0 posting to its own shard at t=0.5L must run before the
  // neighbor's event at t=2L (windows advance monotonically).
  ShardedSimulator::Options opts;
  opts.lookahead = Duration::millis(10);
  ShardedSimulator engine(2, opts);
  std::vector<int> order;
  engine.schedule(0, Duration{}, [&] {
    order.push_back(0);
    engine.schedule(0, Duration::millis(5), [&] { order.push_back(1); });
  });
  engine.schedule(1, Duration::millis(20), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_GE(engine.windows_executed(), 2u);
}

TEST(ShardedSim, DeterministicAcrossThreadCounts) {
  // A ping-pong workload across 4 shards: the executed (shard, time, tag)
  // sequence collected per shard must be identical for 1, 2, and 8 threads.
  auto run_with = [](std::size_t threads) {
    ShardedSimulator::Options opts;
    opts.threads = threads;
    opts.lookahead = Duration::millis(1);
    ShardedSimulator engine(4, opts);
    std::vector<std::vector<std::string>> per_shard(4);
    for (std::size_t s = 0; s < 4; ++s) {
      engine.schedule(s, Duration::millis(static_cast<double>(s)), [&, s] {
        per_shard[s].push_back("start@" + std::to_string(engine.now(s).since_start().to_micros()));
        for (std::size_t peer = 0; peer < 4; ++peer) {
          if (peer == s) continue;
          engine.post(peer, Duration::millis(2), [&, s, peer] {
            per_shard[peer].push_back("from" + std::to_string(s) + "@" +
                                      std::to_string(engine.now(peer).since_start().to_micros()));
          });
        }
      });
    }
    engine.run();
    return per_shard;
  };
  auto baseline = run_with(1);
  EXPECT_EQ(run_with(2), baseline);
  EXPECT_EQ(run_with(8), baseline);
}

TEST(ShardedSim, ParallelExecutionActuallyUsesWorkers) {
  // Not a timing assertion — just that the pool path executes all events.
  ShardedSimulator::Options opts;
  opts.threads = 4;
  ShardedSimulator engine(8, opts);
  std::atomic<int> ran{0};
  for (std::size_t s = 0; s < 8; ++s)
    for (int i = 0; i < 100; ++i)
      engine.schedule(s, Duration::millis(i), [&] { ran.fetch_add(1); });
  EXPECT_EQ(engine.run(), 800u);
  EXPECT_EQ(ran.load(), 800);
}

TEST(ShardedSim, RunReturnsDeltaNotTotal) {
  ShardedSimulator engine(2);
  engine.schedule(0, Duration{}, [] {});
  EXPECT_EQ(engine.run(), 1u);
  engine.schedule(1, Duration{}, [] {});
  engine.schedule(1, Duration::millis(1), [] {});
  EXPECT_EQ(engine.run(), 2u);
  EXPECT_EQ(engine.events_executed(), 3u);
}

TEST(ShardedSim, ShardClocksNeverRegress) {
  ShardedSimulator::Options opts;
  opts.lookahead = Duration::millis(1);
  ShardedSimulator engine(2, opts);
  std::vector<TimePoint> times;
  engine.schedule(0, Duration::millis(3), [&] {
    times.push_back(engine.now(0));
    engine.post(1, Duration::millis(1), [&] { times.push_back(engine.now(1)); });
  });
  engine.schedule(1, Duration::millis(1), [&] { times.push_back(engine.now(1)); });
  engine.run();
  ASSERT_EQ(times.size(), 3u);
  // Windows execute in global time order: shard 1's 1ms event, shard 0's 3ms
  // event, then the cross-shard delivery at 4ms.
  EXPECT_EQ(times[0], TimePoint::zero() + Duration::millis(1));
  EXPECT_EQ(times[1], TimePoint::zero() + Duration::millis(3));
  EXPECT_EQ(times[2], TimePoint::zero() + Duration::millis(4));
}

}  // namespace

// --- Shard profiler ---------------------------------------------------------

namespace {

/// Per-shard profile_* count deltas from one profiled run (wall-derived
/// profile_wall_* gauges excluded: those legitimately vary with threads).
using ProfileCounts = std::vector<std::vector<std::uint64_t>>;

constexpr const char* kProfileCounters[] = {
    "profile_events_total",         "profile_mail_sent_total",
    "profile_mail_recv_total",      "profile_windows_total",
    "profile_bounded_windows_total"};

ProfileCounts profile_counter_values(std::size_t shards) {
  const obs::MetricsRegistry& reg = obs::default_registry();
  ProfileCounts out(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const obs::Labels labels{{"shard", std::to_string(s)}};
    for (const char* name : kProfileCounters) {
      const obs::Counter* c = reg.find_counter(name, labels);
      out[s].push_back(c != nullptr ? c->value() : 0);
    }
  }
  return out;
}

/// Cross-shard ping-pong workload: every shard fans mail out to its
/// neighbour across several windows, and the deliveries schedule follow-ups.
void profiled_workload(ShardedSimulator& engine, std::size_t shards) {
  for (std::size_t s = 0; s < shards; ++s) {
    engine.schedule(s, Duration::millis(1.0 + static_cast<double>(s)), [&engine, s, shards] {
      for (int k = 0; k < 3; ++k) {
        engine.post((s + 1) % shards, Duration::millis(1.0 + k), [&engine] {
          engine.schedule(ShardedSimulator::current_shard(), Duration::millis(2), [] {});
        });
      }
    });
  }
}

}  // namespace

namespace {

TEST(ShardedSimProfile, CountSeriesIdenticalAcrossThreadCounts) {
  constexpr std::size_t kShards = 3;
  auto run_once = [](std::size_t threads) {
    ProfileCounts before = profile_counter_values(kShards);
    ShardedSimulator::Options opts;
    opts.threads = threads;
    opts.lookahead = Duration::millis(1);
    opts.profile = true;
    ShardedSimulator engine(kShards, opts);
    profiled_workload(engine, kShards);
    engine.run();

    // Keep only the deterministic per-window event tracks from the global
    // sample ring (busy-ms tracks are wall time and vary freely).
    std::vector<std::pair<std::string, double>> event_samples;
    for (const obs::CounterSample& c : ShardedSimulator::drain_profile_samples()) {
      if (c.track.find("/events") != std::string::npos)
        event_samples.emplace_back(c.track + "@" + std::to_string(c.at_ns), c.value);
    }

    ProfileCounts delta = profile_counter_values(kShards);
    for (std::size_t s = 0; s < kShards; ++s)
      for (std::size_t i = 0; i < delta[s].size(); ++i) delta[s][i] -= before[s][i];
    return std::pair{delta, event_samples};
  };

  auto baseline = run_once(1);
  EXPECT_GT(baseline.first[0][0], 0u);  // shard 0 executed events
  EXPECT_GT(baseline.second.size(), 0u);
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    auto got = run_once(threads);
    EXPECT_EQ(got.first, baseline.first) << "threads=" << threads;
    EXPECT_EQ(got.second, baseline.second) << "threads=" << threads;
  }
}

TEST(ShardedSimProfile, OffMeansNoSamplesAndNoFlush) {
  (void)ShardedSimulator::drain_profile_samples();  // clear residue
  ShardedSimulator engine(2);
  EXPECT_FALSE(engine.profiling());
  engine.schedule(0, Duration::millis(1), [] {});
  engine.schedule(1, Duration::millis(2), [] {});
  engine.run();
  std::uint64_t dropped = 0;
  EXPECT_TRUE(ShardedSimulator::drain_profile_samples(&dropped).empty());
  EXPECT_EQ(dropped, 0u);
}

TEST(ShardedSimProfile, SamplerPolledAtWindowBarriers) {
  obs::TimeSeriesRecorder::Options ropts;
  ropts.interval = Duration::millis(1.0);
  ropts.capacity = 64;
  obs::TimeSeriesRecorder recorder(ropts);  // reads the default registry
  recorder.track_counter("sim_events_executed_total");

  ShardedSimulator::Options opts;
  opts.lookahead = Duration::millis(1);
  ShardedSimulator engine(2, opts);
  engine.set_sampler(&recorder);
  for (int i = 1; i <= 5; ++i) {
    engine.schedule(0, Duration::millis(i), [] {});
    engine.schedule(1, Duration::millis(i), [] {});
  }
  engine.run();
  engine.set_sampler(nullptr);

  auto series = recorder.snapshot();
  ASSERT_EQ(series.size(), 1u);
  ASSERT_GT(series[0].points.size(), 0u);
  for (std::size_t i = 1; i < series[0].points.size(); ++i) {
    EXPECT_GT(series[0].points[i].at_ns, series[0].points[i - 1].at_ns);
    EXPECT_GE(series[0].points[i].value, series[0].points[i - 1].value);
  }
}

}  // namespace
}  // namespace softmow::sim
