// Management plane and controller plumbing: border computation, the
// reconfiguration protocol's error paths, app request/response correlation,
// and repair no-ops.
#include <gtest/gtest.h>

#include "mgmt/failover.h"
#include "softmow/softmow.h"

namespace softmow {
namespace {

class MgmtFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    s1 = net.add_switch();
    s2 = net.add_switch();
    s3 = net.add_switch();
    (void)net.connect(s1, s2);
    (void)net.connect(s2, s3);
    // Groups: a, b in region west (a adjacent to c across the border);
    // c in region east.
    a = net.add_bs_group(s1);
    b = net.add_bs_group(s1);
    c = net.add_bs_group(s3);
    net.add_base_station(a, {});
    net.add_base_station(b, {});
    net.add_base_station(c, {});
    net.add_egress(s3);

    spec.leaves.push_back(mgmt::RegionSpec{"west", {s1, s2}, {a, b}});
    spec.leaves.push_back(mgmt::RegionSpec{"east", {s3}, {c}});
    spec.group_adjacency.add(a, c, 10.0);
    spec.group_adjacency.add(a, b, 3.0);
    mp = std::make_unique<mgmt::ManagementPlane>(&net);
    mp->bootstrap(spec);
  }

  dataplane::PhysicalNetwork net;
  SwitchId s1, s2, s3;
  BsGroupId a, b, c;
  mgmt::HierarchySpec spec;
  std::unique_ptr<mgmt::ManagementPlane> mp;
};

TEST_F(MgmtFixture, BordersFollowCrossRegionAdjacency) {
  // a <-> c crosses regions: both are border; b is internal to west.
  EXPECT_TRUE(mp->leaf(0).abstraction().border_gbs().contains(mgmt::gbs_id_for_group(a)));
  EXPECT_FALSE(mp->leaf(0).abstraction().border_gbs().contains(mgmt::gbs_id_for_group(b)));
  EXPECT_TRUE(mp->leaf(1).abstraction().border_gbs().contains(mgmt::gbs_id_for_group(c)));
}

TEST_F(MgmtFixture, LeafOfGroupTracksAssignment) {
  EXPECT_EQ(mp->leaf_of_group(a), &mp->leaf(0));
  EXPECT_EQ(mp->leaf_of_group(c), &mp->leaf(1));
  EXPECT_EQ(mp->leaf_of_group(BsGroupId{404}), nullptr);
  EXPECT_EQ(mp->leaf_index_of_group(c), 1u);
}

TEST_F(MgmtFixture, ReassignErrorPaths) {
  auto& root = mp->root();
  SwitchId gs_west = mp->leaf(0).abstraction().gswitch_id();
  SwitchId gs_east = mp->leaf(1).abstraction().gswitch_id();

  // Unknown child G-switch.
  EXPECT_EQ(mp->reassign_gbs(root, mgmt::gbs_id_for_group(a), SwitchId{12345}, gs_east).code(),
            ErrorCode::kNotFound);
  // Unknown group.
  EXPECT_EQ(mp->reassign_gbs(root, GBsId{777}, gs_west, gs_east).code(),
            ErrorCode::kNotFound);
  // Wrong claimed source.
  EXPECT_EQ(mp->reassign_gbs(root, mgmt::gbs_id_for_group(c), gs_west, gs_east).code(),
            ErrorCode::kConflict);
}

TEST_F(MgmtFixture, ReassignMovesControlOfTheAccessSwitch) {
  auto& root = mp->root();
  SwitchId gs_west = mp->leaf(0).abstraction().gswitch_id();
  SwitchId gs_east = mp->leaf(1).abstraction().gswitch_id();
  SwitchId access = net.bs_group(a)->access_switch;
  ASSERT_EQ(net.sw(access)->master(), mp->leaf(0).id());

  ASSERT_TRUE(mp->reassign_gbs(root, mgmt::gbs_id_for_group(a), gs_west, gs_east).ok());
  EXPECT_EQ(net.sw(access)->master(), mp->leaf(1).id());
  EXPECT_EQ(mp->leaf_of_group(a), &mp->leaf(1));
  EXPECT_EQ(mp->leaf(0).nib().gbs(mgmt::gbs_id_for_group(a)), nullptr);
  EXPECT_NE(mp->leaf(1).nib().gbs(mgmt::gbs_id_for_group(a)), nullptr);
  // The root still resolves the G-BS (re-announced by the new owner).
  EXPECT_NE(root.nib().gbs(mgmt::gbs_id_for_group(a)), nullptr);
  // Discovery remains a partition of the physical links.
  std::size_t discovered = 0;
  for (reca::Controller* ctl : mp->all_controllers())
    discovered += ctl->nib().links().size();
  EXPECT_EQ(discovered, net.links().size());
}

TEST_F(MgmtFixture, UeTransferHookFiresDuringReassign) {
  int fired = 0;
  mp->set_ue_transfer_hook(
      [&](BsGroupId group, reca::Controller& from, reca::Controller& to) {
        ++fired;
        EXPECT_EQ(group, a);
        EXPECT_EQ(&from, &mp->leaf(0));
        EXPECT_EQ(&to, &mp->leaf(1));
      });
  auto& root = mp->root();
  ASSERT_TRUE(mp->reassign_gbs(root, mgmt::gbs_id_for_group(a),
                               mp->leaf(0).abstraction().gswitch_id(),
                               mp->leaf(1).abstraction().gswitch_id())
                  .ok());
  EXPECT_EQ(fired, 1);
}

TEST_F(MgmtFixture, ControllerSendToUnknownDeviceFails) {
  EXPECT_EQ(mp->leaf(0).send(SwitchId{999}, southbound::EchoRequest{Xid{1}}).code(),
            ErrorCode::kNotFound);
}

TEST_F(MgmtFixture, AppRequestResponseCorrelation) {
  auto& root = mp->root();
  SwitchId gs_west = mp->leaf(0).abstraction().gswitch_id();
  // Register an echo-style app at the leaf.
  mp->leaf(0).reca().register_app_handler("ping", [&](const southbound::AppMessage& msg) {
    southbound::AppMessage reply;
    reply.type = "ping";
    reply.body = std::string("pong-") + std::to_string(msg.request_id);
    mp->leaf(0).reca().respond_up(msg.request_id, std::move(reply));
  });
  std::vector<std::string> answers;
  for (int i = 0; i < 3; ++i) {
    southbound::AppMessage ping;
    ping.type = "ping";
    root.send_app_request(gs_west, std::move(ping), [&](const southbound::AppMessage& resp) {
      answers.push_back(*std::any_cast<std::string>(&resp.body));
    });
  }
  ASSERT_EQ(answers.size(), 3u);
  // Each response matched its own request id.
  EXPECT_NE(answers[0], answers[1]);
  EXPECT_NE(answers[1], answers[2]);
}

TEST_F(MgmtFixture, RepairIsNoOpOnHealthyTopology) {
  auto [repaired, failed] = mp->leaf(0).repair_paths();
  EXPECT_EQ(repaired, 0u);
  EXPECT_EQ(failed, 0u);
}

TEST_F(MgmtFixture, HotStandbySyncCountsAndTracksDevices) {
  mgmt::HotStandby standby(mp->leaf(0), mp->hub());
  EXPECT_EQ(standby.checkpoints(), 1u);  // constructor syncs
  standby.sync();
  EXPECT_EQ(standby.checkpoints(), 2u);
  auto promoted = standby.promote();
  EXPECT_EQ(promoted->devices().size(), mp->leaf(0).devices().size());
  EXPECT_EQ(promoted->abstraction().border_gbs(),
            mp->leaf(0).abstraction().border_gbs());
}

TEST(MgmtBootstrap, SingleRegionHierarchyWorks) {
  dataplane::PhysicalNetwork net;
  SwitchId s1 = net.add_switch();
  BsGroupId g = net.add_bs_group(s1);
  net.add_base_station(g, {});
  mgmt::HierarchySpec spec;
  spec.leaves.push_back(mgmt::RegionSpec{"only", {s1}, {g}});
  mgmt::ManagementPlane mp(&net);
  mp.bootstrap(spec);
  EXPECT_EQ(mp.leaf_count(), 1u);
  EXPECT_EQ(mp.root().nib().switch_count(), 1u);
  EXPECT_TRUE(mp.root().nib().links().empty());  // nothing to discover up top
}

}  // namespace
}  // namespace softmow
