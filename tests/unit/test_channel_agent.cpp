#include <gtest/gtest.h>

#include "dataplane/network.h"
#include "southbound/channel.h"
#include "southbound/switch_agent.h"

namespace softmow::southbound {
namespace {

TEST(Channel, DeliversBothDirections) {
  Channel ch;
  std::vector<std::string> log;
  ch.bind_controller([&](const Message& m) { log.push_back(std::string("c:") + message_name(m)); });
  ch.bind_device([&](const Message& m) { log.push_back(std::string("d:") + message_name(m)); });
  ch.send_to_device(EchoRequest{Xid{1}});
  ch.send_to_controller(EchoReply{Xid{1}});
  EXPECT_EQ(log, (std::vector<std::string>{"d:echo-request", "c:echo-reply"}));
  EXPECT_EQ(ch.sent_to_device(), 1u);
  EXPECT_EQ(ch.sent_to_controller(), 1u);
}

TEST(Channel, ReentrantSendsAreFlattenedFifo) {
  Channel ch;
  std::vector<int> order;
  ch.bind_device([&](const Message&) {
    order.push_back(1);
    // Handler sends back; must not recurse into nested delivery.
    ch.send_to_controller(EchoReply{Xid{1}});
    order.push_back(2);
  });
  ch.bind_controller([&](const Message&) { order.push_back(3); });
  ch.send_to_device(EchoRequest{Xid{1}});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, UnboundHandlerDropsSilently) {
  Channel ch;
  ch.send_to_device(EchoRequest{Xid{1}});  // no device handler: dropped
  EXPECT_EQ(ch.sent_to_device(), 1u);
}

TEST(Channel, DisconnectStopsDelivery) {
  Channel ch;
  int delivered = 0;
  ch.bind_device([&](const Message&) { ++delivered; });
  ch.disconnect();
  ch.send_to_device(EchoRequest{Xid{1}});
  EXPECT_EQ(delivered, 0);
  EXPECT_FALSE(ch.connected());
}

TEST(Channel, SharedCounterTalliesDirections) {
  MessageCounter counter;
  Channel a(&counter), b(&counter);
  a.bind_device([](const Message&) {});
  b.bind_controller([](const Message&) {});
  a.send_to_device(EchoRequest{Xid{1}});
  b.send_to_controller(EchoReply{Xid{1}});
  EXPECT_EQ(counter.to_device, 1u);
  EXPECT_EQ(counter.to_controller, 1u);
  EXPECT_EQ(counter.total(), 2u);
}

class AgentFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    a = net.add_switch();
    b = net.add_switch();
    link = *net.connect(a, b);
    hub = std::make_unique<Hub>(&net);
  }

  dataplane::PhysicalNetwork net;
  SwitchId a, b;
  LinkId link;
  std::unique_ptr<Hub> hub;
};

TEST_F(AgentFixture, ConnectSendsHelloAndAnswersFeatures) {
  Channel ch;
  std::vector<Message> inbox;
  ch.bind_controller([&](const Message& m) { inbox.push_back(m); });
  hub->agent(a)->connect(ControllerId{1}, &ch);
  ASSERT_GE(inbox.size(), 1u);
  ASSERT_TRUE(std::holds_alternative<Hello>(inbox[0]));
  EXPECT_EQ(std::get<Hello>(inbox[0]).sw, a);
  EXPECT_EQ(net.sw(a)->master(), ControllerId{1});

  ch.send_to_device(FeaturesRequest{Xid{5}, a});
  ASSERT_EQ(inbox.size(), 2u);
  const auto& reply = std::get<FeaturesReply>(inbox[1]);
  EXPECT_EQ(reply.xid, Xid{5});
  EXPECT_FALSE(reply.is_gswitch);
  EXPECT_EQ(reply.ports.size(), 1u);  // just the link port
}

TEST_F(AgentFixture, FlowModProgramsTheSwitch) {
  Channel ch;
  ch.bind_controller([](const Message&) {});
  hub->agent(a)->connect(ControllerId{1}, &ch);
  FlowMod mod;
  mod.op = FlowMod::Op::kAdd;
  mod.sw = a;
  mod.rule.cookie = 9;
  ch.send_to_device(mod);
  EXPECT_EQ(net.sw(a)->table().size(), 1u);
  mod.op = FlowMod::Op::kRemoveByCookie;
  mod.cookie = 9;
  ch.send_to_device(mod);
  EXPECT_EQ(net.sw(a)->table().size(), 0u);
}

TEST_F(AgentFixture, DiscoveryFrameCrossesTheWireWithMetadata) {
  Channel cha, chb;
  std::vector<Message> inbox_b;
  cha.bind_controller([](const Message&) {});
  chb.bind_controller([&](const Message& m) { inbox_b.push_back(m); });
  hub->agent(a)->connect(ControllerId{1}, &cha);
  hub->agent(b)->connect(ControllerId{2}, &chb);
  inbox_b.clear();

  DiscoveryPayload payload;
  payload.stack.push_back(DiscoveryStackEntry{ControllerId{1}, a, net.link(link)->a.port});
  PacketOut out;
  out.sw = a;
  out.port = net.link(link)->a.port;
  out.body = payload;
  cha.send_to_device(out);

  ASSERT_EQ(inbox_b.size(), 1u);
  const auto& in = std::get<PacketIn>(inbox_b[0]);
  EXPECT_EQ(in.sw, b);
  EXPECT_EQ(in.in_port, net.link(link)->b.port);
  const auto& received = std::get<DiscoveryPayload>(in.body);
  EXPECT_TRUE(received.meta.filled);
  EXPECT_DOUBLE_EQ(received.meta.latency_us, 5000);
  ASSERT_EQ(received.stack.size(), 1u);
  EXPECT_EQ(received.stack.back().controller, ControllerId{1});
}

TEST_F(AgentFixture, FrameOutDownLinkIsLost) {
  Channel cha, chb;
  std::vector<Message> inbox_b;
  cha.bind_controller([](const Message&) {});
  chb.bind_controller([&](const Message& m) { inbox_b.push_back(m); });
  hub->agent(a)->connect(ControllerId{1}, &cha);
  hub->agent(b)->connect(ControllerId{2}, &chb);
  inbox_b.clear();
  ASSERT_TRUE(net.set_link_up(link, false).ok());
  inbox_b.clear();  // drop the port-status event

  PacketOut out;
  out.sw = a;
  out.port = net.link(link)->a.port;
  out.body = DiscoveryPayload{};
  cha.send_to_device(out);
  EXPECT_TRUE(inbox_b.empty());
}

TEST_F(AgentFixture, RoleRequestChangesRole) {
  Channel ch1, ch2;
  std::vector<Message> inbox2;
  ch1.bind_controller([](const Message&) {});
  ch2.bind_controller([&](const Message& m) { inbox2.push_back(m); });
  hub->agent(a)->connect(ControllerId{1}, &ch1, dataplane::ControllerRole::kMaster);
  hub->agent(a)->connect(ControllerId{2}, &ch2, dataplane::ControllerRole::kEqual);
  inbox2.clear();

  RoleRequest promote;
  promote.xid = Xid{1};
  promote.sw = a;
  promote.controller = ControllerId{2};
  promote.role = dataplane::ControllerRole::kMaster;
  ch2.send_to_device(promote);
  EXPECT_EQ(net.sw(a)->master(), ControllerId{2});
  ASSERT_FALSE(inbox2.empty());
  EXPECT_TRUE(std::holds_alternative<RoleReply>(inbox2.back()));
}

TEST_F(AgentFixture, EqualRoleControllerAlsoGetsPunts) {
  Channel ch1, ch2;
  int punts1 = 0, punts2 = 0;
  ch1.bind_controller([&](const Message& m) {
    punts1 += std::holds_alternative<PacketIn>(m) ? 1 : 0;
  });
  ch2.bind_controller([&](const Message& m) {
    punts2 += std::holds_alternative<PacketIn>(m) ? 1 : 0;
  });
  hub->agent(a)->connect(ControllerId{1}, &ch1, dataplane::ControllerRole::kMaster);
  hub->agent(a)->connect(ControllerId{2}, &ch2, dataplane::ControllerRole::kEqual);

  Packet pkt;
  auto report = net.inject_at(pkt, net.link(link)->a);
  hub->deliver_packet_ins(report);
  EXPECT_EQ(punts1, 1);
  EXPECT_EQ(punts2, 1);
}

TEST_F(AgentFixture, LinkFailureEmitsPortStatusToBothEnds) {
  Channel cha, chb;
  std::vector<Message> ia, ib;
  cha.bind_controller([&](const Message& m) { ia.push_back(m); });
  chb.bind_controller([&](const Message& m) { ib.push_back(m); });
  hub->agent(a)->connect(ControllerId{1}, &cha);
  hub->agent(b)->connect(ControllerId{2}, &chb);
  ia.clear();
  ib.clear();
  ASSERT_TRUE(net.set_link_up(link, false).ok());
  ASSERT_EQ(ia.size(), 1u);
  ASSERT_EQ(ib.size(), 1u);
  const auto& status = std::get<PortStatus>(ia[0]);
  EXPECT_FALSE(status.desc.up);
  EXPECT_EQ(status.sw, a);
}

}  // namespace
}  // namespace softmow::southbound
