// Static data-plane verifier: symbolic walks on hand-built tables, seeded
// faults on real scenario state, and agreement with the probe audit.
#include <gtest/gtest.h>

#include "softmow/softmow.h"

namespace softmow {
namespace {

using dataplane::FlowRule;
using dataplane::output;
using dataplane::pop_label;
using dataplane::push_label;
using dataplane::set_version;
using verify::Finding;
using verify::Invariant;
using verify::VerifyReport;

bool has_finding(const VerifyReport& report, Invariant inv, SwitchId sw,
                 std::uint64_t cookie) {
  for (const Finding& f : report.findings) {
    if (f.invariant == inv && f.sw == sw && f.cookie == cookie) return true;
  }
  return false;
}

std::string dump(const VerifyReport& report) {
  std::string out = report.summary();
  for (const Finding& f : report.findings) out += "\n  " + f.str();
  return out;
}

// Hand-built chain: BS group at `a`, egress at `c`, one classified flow
// pushing label 5 across a -> b -> c, popped at the border.
class VerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a = net.add_switch({0, 0});
    b = net.add_switch({1, 0});
    c = net.add_switch({2, 0});
    ab = *net.connect(a, b, sim::Duration::millis(5), 1000);
    bc = *net.connect(b, c, sim::Duration::millis(5), 1000);
    group = net.add_bs_group(a);
    net.add_base_station(group, {0, 1});
    egress = net.add_egress(c);
    access = net.bs_group(group)->access_switch;
  }

  void install_chain() {
    FlowRule classify;
    classify.cookie = 1;
    classify.match.ue = UeId{1};
    classify.actions = {push_label(Label{5, 1}), output(PortId{2})};
    ASSERT_TRUE(net.sw(access)->table().install(classify).ok());
    install_transit(a, 2, net.link(ab)->a.port);
    install_transit(b, 3, net.link(bc)->a.port);
    FlowRule exit;
    exit.cookie = 4;
    exit.match.label = 5;
    exit.actions = {pop_label(), output(net.egress(egress)->attach.port)};
    ASSERT_TRUE(net.sw(c)->table().install(exit).ok());
  }

  void install_transit(SwitchId sw, std::uint64_t cookie, PortId out) {
    FlowRule rule;
    rule.cookie = cookie;
    rule.match.label = 5;
    rule.actions = {output(out)};
    ASSERT_TRUE(net.sw(sw)->table().install(rule).ok());
  }

  dataplane::PhysicalNetwork net;
  SwitchId a, b, c, access;
  LinkId ab, bc;
  BsGroupId group;
  EgressId egress;
};

TEST_F(VerifierTest, CleanChainVerifiesClean) {
  install_chain();
  VerifyReport report = verify::verify_data_plane(net);
  EXPECT_TRUE(report.clean()) << dump(report);
  EXPECT_EQ(report.classes_analyzed, 1u);
  EXPECT_EQ(report.classes_delivered, 1u);
  EXPECT_EQ(report.rules_analyzed, 4u);
  // classifier -> a -> b -> c along the rule graph.
  EXPECT_EQ(report.graph_edges, 3u);
}

TEST_F(VerifierTest, MissingTransitRuleIsABlackhole) {
  install_chain();
  net.sw(b)->table().clear();
  VerifyReport report = verify::verify_data_plane(net);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.blackholes, 1u) << dump(report);
  // The miss manifests at b; the class is named after its classifier.
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].sw, b);
  EXPECT_EQ(report.findings[0].origin_switch, access);
  EXPECT_EQ(report.findings[0].origin_cookie, 1u);
}

TEST_F(VerifierTest, WrongOutPortIsABlackholeNamingTheRule) {
  install_chain();
  install_transit(a, 2, PortId{999});  // replaces cookie 2 with a dead port
  VerifyReport report = verify::verify_data_plane(net);
  EXPECT_TRUE(has_finding(report, Invariant::kBlackhole, a, 2)) << dump(report);
}

TEST_F(VerifierTest, ForwardingLoopIsDetectedSymbolically) {
  install_chain();
  install_transit(b, 3, net.link(ab)->b.port);  // b sends the label back to a
  VerifyReport report = verify::verify_data_plane(net);
  EXPECT_GE(report.loops, 1u) << dump(report);
  EXPECT_EQ(report.classes_delivered, 0u);
}

TEST_F(VerifierTest, MissingPopIsAnUnbalancedStack) {
  install_chain();
  FlowRule exit;
  exit.cookie = 4;
  exit.match.label = 5;
  exit.actions = {output(net.egress(egress)->attach.port)};  // forgot the pop
  ASSERT_TRUE(net.sw(c)->table().install(exit).ok());
  VerifyReport report = verify::verify_data_plane(net);
  EXPECT_TRUE(has_finding(report, Invariant::kUnbalancedStack, c, 4)) << dump(report);
  EXPECT_EQ(report.classes_delivered, 0u);
}

TEST_F(VerifierTest, DoublePushViolatesLabelDepth) {
  install_chain();
  FlowRule classify;
  classify.cookie = 1;
  classify.match.ue = UeId{1};
  classify.actions = {push_label(Label{5, 1}), push_label(Label{5, 2}), output(PortId{2})};
  ASSERT_TRUE(net.sw(access)->table().install(classify).ok());
  VerifyReport report = verify::verify_data_plane(net);
  EXPECT_TRUE(has_finding(report, Invariant::kLabelDepth, access, 1)) << dump(report);
}

TEST_F(VerifierTest, PopOnEmptyStackIsFlagged) {
  install_chain();
  FlowRule classify;
  classify.cookie = 1;
  classify.match.ue = UeId{1};
  classify.actions = {pop_label(), output(PortId{2})};
  ASSERT_TRUE(net.sw(access)->table().install(classify).ok());
  VerifyReport report = verify::verify_data_plane(net);
  EXPECT_TRUE(has_finding(report, Invariant::kUnbalancedStack, access, 1)) << dump(report);
}

TEST_F(VerifierTest, StaleVersionMatchIsAMixedVersionFinding) {
  install_chain();
  // Rule at b now only exists under update version 7 — packets of the class
  // carry version 0, so §6 consistency is broken mid-path.
  FlowRule stale;
  stale.cookie = 3;
  stale.match.label = 5;
  stale.match.version = 7;
  stale.actions = {output(net.link(bc)->a.port)};
  ASSERT_TRUE(net.sw(b)->table().install(stale).ok());
  VerifyReport report = verify::verify_data_plane(net);
  EXPECT_TRUE(has_finding(report, Invariant::kMixedVersion, b, 3)) << dump(report);
}

TEST_F(VerifierTest, ClassObservingTwoVersionsIsFlagged) {
  install_chain();
  FlowRule classify;
  classify.cookie = 1;
  classify.match.ue = UeId{1};
  classify.actions = {set_version(1), push_label(Label{5, 1}), output(PortId{2})};
  ASSERT_TRUE(net.sw(access)->table().install(classify).ok());
  // Transit at b re-stamps the packet with a *different* version: the class
  // observes a mix of update generations (§6).
  FlowRule restamp;
  restamp.cookie = 3;
  restamp.match.label = 5;
  restamp.actions = {set_version(2), output(net.link(bc)->a.port)};
  ASSERT_TRUE(net.sw(b)->table().install(restamp).ok());
  VerifyReport report = verify::verify_data_plane(net);
  EXPECT_GE(report.mixed_versions, 1u) << dump(report);
}

TEST_F(VerifierTest, DominatedRuleIsShadowed) {
  install_chain();
  FlowRule blanket;  // higher priority, strictly wider match than cookie 2
  blanket.cookie = 9;
  blanket.priority = 50;
  blanket.actions = {output(net.link(ab)->a.port)};
  ASSERT_TRUE(net.sw(a)->table().install(blanket).ok());
  VerifyReport report = verify::verify_data_plane(net);
  EXPECT_TRUE(has_finding(report, Invariant::kShadowedRule, a, 2)) << dump(report);
}

TEST_F(VerifierTest, OrphanRulesAndPathlessBearersNeedControlState) {
  install_chain();
  verify::ControlState state;
  state.have_live_rules = true;
  state.live_rules = {{access, 1}, {a, 2}, {c, 4}};  // b's rule backs no path
  state.bearers.push_back({UeId{1}, BearerId{1}, /*active=*/true, /*path_installed=*/false});
  state.bearers.push_back({UeId{2}, BearerId{2}, /*active=*/false, /*path_installed=*/false});

  VerifyReport report = verify::verify_data_plane(net, &state);
  EXPECT_TRUE(has_finding(report, Invariant::kOrphanRule, b, 3)) << dump(report);
  EXPECT_EQ(report.orphan_rules, 1u);
  EXPECT_EQ(report.pathless_bearers, 1u);

  // Without control state, neither cross-check can (or should) fire.
  VerifyReport bare = verify::verify_data_plane(net);
  EXPECT_TRUE(bare.clean()) << dump(bare);
}

TEST_F(VerifierTest, IncrementalReverifyTracksLocalizedDamage) {
  install_chain();
  verify::StaticVerifier verifier(&net);
  EXPECT_TRUE(verifier.verify().clean());

  install_transit(b, 3, PortId{999});  // sabotage b
  VerifyReport broken = verifier.reverify({b});
  EXPECT_TRUE(has_finding(broken, Invariant::kBlackhole, b, 3)) << dump(broken);

  install_transit(b, 3, net.link(bc)->a.port);  // repair b
  VerifyReport repaired = verifier.reverify({b});
  EXPECT_TRUE(repaired.clean()) << dump(repaired);
  EXPECT_EQ(repaired.classes_delivered, 1u);

  // A dirty switch no class ever touches re-checks only that switch.
  SwitchId d = net.add_switch({9, 9});
  VerifyReport still_clean = verifier.reverify({d});
  EXPECT_TRUE(still_clean.clean()) << dump(still_clean);
}

// --- seeded faults on real controller-installed state ------------------------

class SeededFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario = topo::build_scenario(topo::small_scenario_params(9));
    auto& mp = *scenario->mgmt;
    group = scenario->partition.group_regions[0].front();
    BsId bs = scenario->net.bs_group(group)->members.front();
    leaf = mp.leaf_of_group(group);
    auto& mobility = scenario->apps->mobility(*leaf);
    ASSERT_TRUE(mobility.ue_attach(UeId{1}, bs).ok());
    apps::BearerRequest request;
    request.ue = UeId{1};
    request.bs = bs;
    request.dst_prefix = PrefixId{3};
    ASSERT_TRUE(mobility.request_bearer(request).ok());

    // Locate the installed path backing the bearer.
    for (PathId id : leaf->paths().paths()) {
      const nos::InstalledPath* p = leaf->paths().path(id);
      if (p != nullptr && p->active && p->classifier.ue == UeId{1}) {
        path = p;
        break;
      }
    }
    ASSERT_NE(path, nullptr);
    ASSERT_GE(path->rules.size(), 2u);
  }

  /// The installed rule at `index` along the path (copy).
  FlowRule rule_at(std::size_t index) {
    auto [sw, cookie] = path->rules[index];
    for (const FlowRule& r : scenario->net.sw(sw)->table().rules()) {
      if (r.cookie == cookie) return r;
    }
    ADD_FAILURE() << "rule " << cookie << " not installed on " << sw.str();
    return {};
  }

  VerifyReport static_verify() { return scenario->mgmt->verify_data_plane(); }

  std::unique_ptr<topo::Scenario> scenario;
  reca::Controller* leaf = nullptr;
  BsGroupId group;
  const nos::InstalledPath* path = nullptr;
};

TEST_F(SeededFaultTest, CleanStateSatisfiesBothCheckers) {
  auto audit = mgmt::audit_data_plane(scenario->net);
  EXPECT_GT(audit.classifiers_probed, 0u);
  EXPECT_TRUE(audit.clean());
  VerifyReport report = static_verify();
  EXPECT_TRUE(report.clean()) << dump(report);
  EXPECT_GT(report.classes_analyzed, 0u);
  EXPECT_EQ(report.classes_delivered, report.classes_analyzed);
}

TEST_F(SeededFaultTest, WrongOutPortFlaggedByBothCheckersPrecisely) {
  std::size_t mid = path->rules.size() / 2;
  auto [sw, cookie] = path->rules[mid];
  FlowRule broken = rule_at(mid);
  for (dataplane::Action& action : broken.actions) {
    if (action.type == dataplane::ActionType::kOutput) action.port = PortId{9999};
  }
  ASSERT_TRUE(scenario->net.sw(sw)->table().install(broken).ok());

  EXPECT_FALSE(mgmt::audit_data_plane(scenario->net).clean());
  VerifyReport report = static_verify();
  EXPECT_TRUE(has_finding(report, Invariant::kBlackhole, sw, cookie)) << dump(report);
}

TEST_F(SeededFaultTest, MissingPopFlaggedByBothCheckersPrecisely) {
  std::size_t last = path->rules.size() - 1;
  auto [sw, cookie] = path->rules[last];
  FlowRule broken = rule_at(last);
  std::erase_if(broken.actions, [](const dataplane::Action& action) {
    return action.type == dataplane::ActionType::kPopLabel;
  });
  ASSERT_TRUE(scenario->net.sw(sw)->table().install(broken).ok());

  auto audit = mgmt::audit_data_plane(scenario->net);
  EXPECT_FALSE(audit.clean());
  EXPECT_GE(audit.label_violations, 1u);
  VerifyReport report = static_verify();
  EXPECT_TRUE(has_finding(report, Invariant::kUnbalancedStack, sw, cookie)) << dump(report);
}

TEST_F(SeededFaultTest, StaleVersionFlaggedByBothCheckersPrecisely) {
  std::size_t mid = path->rules.size() / 2;
  auto [sw, cookie] = path->rules[mid];
  FlowRule stale = rule_at(mid);
  stale.match.version = 7;  // rule survives only in a never-committed update
  ASSERT_TRUE(scenario->net.sw(sw)->table().install(stale).ok());

  EXPECT_FALSE(mgmt::audit_data_plane(scenario->net).clean());
  VerifyReport report = static_verify();
  EXPECT_TRUE(has_finding(report, Invariant::kMixedVersion, sw, cookie)) << dump(report);
}

TEST_F(SeededFaultTest, RuleBehindNoPathIsAnOrphan) {
  auto [sw, cookie] = path->rules[0];
  FlowRule rogue = rule_at(0);
  rogue.cookie = 987654;  // same shape, but no controller path owns it
  rogue.priority += 1;
  ASSERT_TRUE(scenario->net.sw(sw)->table().install(rogue).ok());

  VerifyReport report = static_verify();
  EXPECT_TRUE(has_finding(report, Invariant::kOrphanRule, sw, 987654)) << dump(report);
  (void)cookie;
}

TEST_F(SeededFaultTest, DeactivatedBearerLeavesNoOrphans) {
  auto& mobility = scenario->apps->mobility(*leaf);
  const apps::UeRecord* rec = mobility.ue(UeId{1});
  ASSERT_NE(rec, nullptr);
  ASSERT_FALSE(rec->bearers.empty());
  ASSERT_TRUE(mobility.deactivate_bearer(UeId{1}, rec->bearers.begin()->first).ok());
  VerifyReport report = static_verify();
  EXPECT_TRUE(report.clean()) << dump(report);
}

}  // namespace
}  // namespace softmow
