#include <gtest/gtest.h>

#include "nos/routing.h"

namespace softmow::nos {
namespace {

southbound::PortDesc port(std::uint64_t id,
                          dataplane::PeerKind peer = dataplane::PeerKind::kSwitch,
                          std::uint64_t egress = ~0ull) {
  southbound::PortDesc d;
  d.port = PortId{id};
  d.peer = peer;
  if (egress != ~0ull) d.egress = EgressId{egress};
  return d;
}

/// A line of switches 1 - 2 - 3, each with an egress port, plus a radio
/// attachment on switch 1:
///   radio(1:p9)  1 --(5ms)-- 2 --(5ms)-- 3
///   egress E1 at 1:p8, E2 at 3:p8
class RoutingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t s : {1, 2, 3}) {
      SwitchRecord rec;
      rec.id = SwitchId{s};
      rec.ports[PortId{1}] = port(1);
      rec.ports[PortId{2}] = port(2);
      if (s == 1) {
        rec.ports[PortId{9}] = port(9, dataplane::PeerKind::kBsGroup);
        rec.ports[PortId{8}] = port(8, dataplane::PeerKind::kExternal, 1);
      }
      if (s == 3) rec.ports[PortId{8}] = port(8, dataplane::PeerKind::kExternal, 2);
      nib.upsert_switch(rec);
    }
    nib.upsert_link({SwitchId{1}, PortId{2}}, {SwitchId{2}, PortId{1}},
                    EdgeMetrics{5000, 1, 1e6});
    nib.upsert_link({SwitchId{2}, PortId{2}}, {SwitchId{3}, PortId{1}},
                    EdgeMetrics{5000, 1, 1e6});
  }

  Endpoint radio{SwitchId{1}, PortId{9}};
  Nib nib;
  RoutingService routing{&nib};
};

TEST_F(RoutingFixture, PicksNearestEgressByTotalCost) {
  // E1 is 0 internal hops away but has a long external path; E2 is 2 hops
  // away with a short one. Totals: E1 = 0+12, E2 = 2+4 -> E2 wins.
  nib.upsert_external_route({{SwitchId{1}, PortId{8}}, PrefixId{1}, 12, 120000});
  nib.upsert_external_route({{SwitchId{3}, PortId{8}}, PrefixId{1}, 4, 40000});
  RoutingRequest req;
  req.source = radio;
  req.dst_prefix = PrefixId{1};
  auto route = routing.route(req);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->exit, (Endpoint{SwitchId{3}, PortId{8}}));
  EXPECT_EQ(route->egress_id, EgressId{2});
  EXPECT_DOUBLE_EQ(route->total_hops(), 6);
  EXPECT_DOUBLE_EQ(route->internal.hop_count, 2);
}

TEST_F(RoutingFixture, Fig4ConstraintRedirectsToCloserEgress) {
  // The paper's §4.2 example: both egress points are 10 external hops from
  // the prefix; the constraint is a maximum *end-to-end* hop count. The
  // farther egress violates it, the nearer one satisfies it.
  nib.upsert_external_route({{SwitchId{1}, PortId{8}}, PrefixId{7}, 10, 1000});
  nib.upsert_external_route({{SwitchId{3}, PortId{8}}, PrefixId{7}, 10, 1000});
  RoutingRequest req;
  req.source = radio;
  req.dst_prefix = PrefixId{7};
  req.objective = Metric::kLatency;  // latency-optimal would tie; hop bound decides
  req.constraints.max_hops = 11;     // 2 internal + 10 external = 12 > 11
  auto route = routing.route(req);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->egress_id, EgressId{1});  // 0 internal + 10 external = 10
  EXPECT_LE(route->total_hops(), 11);
}

TEST_F(RoutingFixture, UnsatisfiableWhenNoEgressMeetsConstraints) {
  nib.upsert_external_route({{SwitchId{1}, PortId{8}}, PrefixId{7}, 10, 1000});
  RoutingRequest req;
  req.source = radio;
  req.dst_prefix = PrefixId{7};
  req.constraints.max_hops = 5;
  auto route = routing.route(req);
  ASSERT_FALSE(route.ok());
  EXPECT_EQ(route.code(), ErrorCode::kUnsatisfiable);
}

TEST_F(RoutingFixture, NoInterdomainRouteIsNotFound) {
  RoutingRequest req;
  req.source = radio;
  req.dst_prefix = PrefixId{404};
  EXPECT_EQ(routing.route(req).code(), ErrorCode::kNotFound);
}

TEST_F(RoutingFixture, RequestWithoutDestinationIsInvalid) {
  RoutingRequest req;
  req.source = radio;
  EXPECT_EQ(routing.route(req).code(), ErrorCode::kInvalidArgument);
}

TEST_F(RoutingFixture, InternalDestinationRouting) {
  RoutingRequest req;
  req.source = radio;
  req.dst = Endpoint{SwitchId{3}, PortId{8}};
  auto route = routing.route(req);
  ASSERT_TRUE(route.ok());
  EXPECT_FALSE(route->internet_bound());
  EXPECT_DOUBLE_EQ(route->internal.hop_count, 2);
  EXPECT_DOUBLE_EQ(route->external_hops, 0);
  ASSERT_EQ(route->hops.size(), 3u);
  EXPECT_EQ(route->hops[0].sw, SwitchId{1});
  EXPECT_EQ(route->hops[0].in, PortId{9});
}

TEST_F(RoutingFixture, MiddleboxChainIsVisitedInOrder) {
  southbound::GMiddleboxAnnounce fw;
  fw.gmb = MiddleboxId{1};
  fw.type = dataplane::MiddleboxType::kFirewall;
  fw.attached_switch = SwitchId{2};
  fw.attached_port = PortId{5};
  nib.upsert_middlebox(fw);
  // Register the attach port on switch 2.
  SwitchRecord rec = *nib.sw(SwitchId{2});
  rec.ports[PortId{5}] = port(5, dataplane::PeerKind::kMiddlebox);
  nib.upsert_switch(rec);
  nib.upsert_external_route({{SwitchId{3}, PortId{8}}, PrefixId{1}, 4, 40000});

  RoutingRequest req;
  req.source = radio;
  req.dst_prefix = PrefixId{1};
  req.policy.chain = {dataplane::MiddleboxType::kFirewall};
  auto route = routing.route(req);
  ASSERT_TRUE(route.ok());
  ASSERT_EQ(route->middleboxes.size(), 1u);
  EXPECT_EQ(route->middleboxes[0], MiddleboxId{1});
  // The port path passes through the middlebox attach node.
  bool visits = false;
  for (NodeKey node : route->port_path.nodes)
    visits |= node == port_key(SwitchId{2}, PortId{5});
  EXPECT_TRUE(visits);
}

TEST_F(RoutingFixture, SaturatedMiddleboxIsSkipped) {
  southbound::GMiddleboxAnnounce fw;
  fw.gmb = MiddleboxId{1};
  fw.type = dataplane::MiddleboxType::kFirewall;
  fw.attached_switch = SwitchId{2};
  fw.attached_port = PortId{5};
  fw.utilization = 0.99;  // over the admission threshold
  nib.upsert_middlebox(fw);
  nib.upsert_external_route({{SwitchId{3}, PortId{8}}, PrefixId{1}, 4, 40000});
  RoutingRequest req;
  req.source = radio;
  req.dst_prefix = PrefixId{1};
  req.policy.chain = {dataplane::MiddleboxType::kFirewall};
  auto route = routing.route(req);
  ASSERT_FALSE(route.ok());
  EXPECT_EQ(route.code(), ErrorCode::kUnsatisfiable);
}

TEST_F(RoutingFixture, BandwidthFloorAvoidsThinLinks) {
  // Thin the 1-2 link; demand more than it has.
  nib.upsert_link({SwitchId{1}, PortId{2}}, {SwitchId{2}, PortId{1}},
                  EdgeMetrics{5000, 1, 100});
  nib.upsert_external_route({{SwitchId{3}, PortId{8}}, PrefixId{1}, 4, 40000});
  nib.upsert_external_route({{SwitchId{1}, PortId{8}}, PrefixId{1}, 9, 90000});
  RoutingRequest req;
  req.source = radio;
  req.dst_prefix = PrefixId{1};
  req.constraints.min_bandwidth_kbps = 500;
  auto route = routing.route(req);
  ASSERT_TRUE(route.ok());
  // Cannot reach E2 over the thin link: falls back to local egress E1.
  EXPECT_EQ(route->egress_id, EgressId{1});
}

TEST_F(RoutingFixture, GraphCacheInvalidatesOnTopologyChange) {
  nib.upsert_external_route({{SwitchId{3}, PortId{8}}, PrefixId{1}, 4, 40000});
  RoutingRequest req;
  req.source = radio;
  req.dst_prefix = PrefixId{1};
  ASSERT_TRUE(routing.route(req).ok());
  // Cut the line: the cached graph must be rebuilt and routing must fail
  // over to E1 (if present) or fail.
  nib.set_links_at_up({SwitchId{1}, PortId{2}}, false);
  auto after = routing.route(req);
  EXPECT_FALSE(after.ok());
}

}  // namespace
}  // namespace softmow::nos
