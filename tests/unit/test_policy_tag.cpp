// SoftCell-style policy tags: bit-layout roundtrip, disjointness from the
// per-path label space, and deterministic aggregate interning.
#include <gtest/gtest.h>

#include "dataplane/policy_tag.h"

namespace softmow {
namespace {

using dataplane::PolicyTag;
using dataplane::TagAllocator;
using dataplane::decode_tag;
using dataplane::encode_tag;
using dataplane::is_policy_tag;

TEST(PolicyTag, EncodeDecodeRoundtrip) {
  PolicyTag tag;
  tag.slice = SliceId{7};
  tag.clause = 13;
  tag.egress_agg = 555;
  tag.ingress_agg = 1999;
  std::uint32_t value = encode_tag(tag);
  EXPECT_TRUE(is_policy_tag(value));
  auto decoded = decode_tag(value);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, tag);
}

TEST(PolicyTag, RoundtripAtFieldLimits) {
  PolicyTag tag;
  tag.slice = SliceId{PolicyTag::kMaxSlices - 1};
  tag.clause = PolicyTag::kMaxClauses - 1;
  tag.egress_agg = PolicyTag::kMaxEgressAggs - 1;
  tag.ingress_agg = PolicyTag::kMaxIngressAggs - 1;
  auto decoded = decode_tag(encode_tag(tag));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, tag);
}

TEST(PolicyTag, FieldsMaskedToWidth) {
  // Out-of-range inputs must not bleed into neighbouring fields.
  PolicyTag tag;
  tag.slice = SliceId{PolicyTag::kMaxSlices + 3};
  tag.clause = PolicyTag::kMaxClauses + 1;
  tag.egress_agg = PolicyTag::kMaxEgressAggs + 9;
  tag.ingress_agg = PolicyTag::kMaxIngressAggs + 5;
  auto decoded = decode_tag(encode_tag(tag));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->slice.value, 3u);
  EXPECT_EQ(decoded->clause, 1u);
  EXPECT_EQ(decoded->egress_agg, 9u);
  EXPECT_EQ(decoded->ingress_agg, 5u);
}

TEST(PolicyTag, PerPathLabelsAreNotTags) {
  // The swapping allocator keeps the high bit clear (see
  // nos::PathImplementer::allocate_label); any such value must neither carry
  // the marker nor decode.
  for (std::uint32_t value : {0u, 1u, 42u, 0x7fff'ffffu}) {
    EXPECT_FALSE(is_policy_tag(value)) << value;
    EXPECT_FALSE(decode_tag(value).has_value()) << value;
  }
  EXPECT_TRUE(is_policy_tag(PolicyTag::kMarkerBit));
}

TEST(TagAllocator, SameInputsShareOneTag) {
  TagAllocator alloc;
  Endpoint ingress{SwitchId{1}, PortId{1}};
  Endpoint egress{SwitchId{9}, PortId{2}};
  std::uint32_t a = alloc.tag_for(SliceId{0}, 4, ingress, egress);
  std::uint32_t b = alloc.tag_for(SliceId{0}, 4, ingress, egress);
  EXPECT_EQ(a, b);
  EXPECT_EQ(alloc.ingress_aggregates(), 1u);
  EXPECT_EQ(alloc.egress_aggregates(), 1u);
}

TEST(TagAllocator, DimensionsSeparateTags) {
  TagAllocator alloc;
  Endpoint ingress{SwitchId{1}, PortId{1}};
  Endpoint egress{SwitchId{9}, PortId{2}};
  Endpoint other_egress{SwitchId{10}, PortId{2}};
  std::uint32_t base = alloc.tag_for(SliceId{0}, 4, ingress, egress);
  EXPECT_NE(base, alloc.tag_for(SliceId{1}, 4, ingress, egress));
  EXPECT_NE(base, alloc.tag_for(SliceId{0}, 5, ingress, egress));
  EXPECT_NE(base, alloc.tag_for(SliceId{0}, 4, ingress, other_egress));
  EXPECT_EQ(alloc.egress_aggregates(), 2u);
}

TEST(TagAllocator, DeterministicAcrossInstances) {
  // Two allocators fed the same request sequence intern the same dense
  // aggregate ids, so the tag stream is reproducible run-to-run.
  TagAllocator a, b;
  std::vector<std::uint32_t> from_a, from_b;
  for (std::uint64_t i = 0; i < 16; ++i) {
    Endpoint ingress{SwitchId{i % 4}, PortId{1}};
    Endpoint egress{SwitchId{100 + i % 3}, PortId{2}};
    SliceId slice{i % 2};
    std::uint32_t clause = static_cast<std::uint32_t>(i % 5);
    from_a.push_back(a.tag_for(slice, clause, ingress, egress));
    from_b.push_back(b.tag_for(slice, clause, ingress, egress));
  }
  EXPECT_EQ(from_a, from_b);
}

TEST(TagAllocatorGc, ReleasingLastReferenceRecyclesAggregateIds) {
  TagAllocator alloc;
  Endpoint ingress{SwitchId{1}, PortId{1}};
  Endpoint egress{SwitchId{9}, PortId{2}};
  std::uint32_t tag = alloc.tag_for(SliceId{0}, 4, ingress, egress);
  alloc.retain(tag);
  alloc.retain(tag);  // two live aggregates share the tag's ids
  EXPECT_EQ(alloc.ingress_aggregates(), 1u);

  alloc.release(tag);
  EXPECT_EQ(alloc.ingress_aggregates(), 1u) << "still one live reference";
  EXPECT_EQ(alloc.ids_recycled(), 0u);

  alloc.release(tag);
  EXPECT_EQ(alloc.ingress_aggregates(), 0u) << "last reference drained";
  EXPECT_EQ(alloc.egress_aggregates(), 0u);
  EXPECT_EQ(alloc.ids_recycled(), 2u);  // one ingress + one egress id
}

TEST(TagAllocatorGc, RecycledIdsAreReissuedSmallestFirst) {
  TagAllocator alloc;
  Endpoint egress{SwitchId{99}, PortId{1}};
  // Intern ingress ids 0, 1, 2.
  std::vector<std::uint32_t> tags;
  for (std::uint64_t i = 0; i < 3; ++i) {
    tags.push_back(
        alloc.tag_for(SliceId{0}, 0, Endpoint{SwitchId{i}, PortId{1}}, egress));
    alloc.retain(tags.back());
  }
  // Drain ids 1 then 0 (recycle order must not matter: reuse is smallest-first).
  alloc.release(tags[1]);
  alloc.release(tags[0]);
  EXPECT_EQ(alloc.ingress_aggregates(), 1u);

  // A new endpoint takes ingress id 0, the next takes 1 — deterministic reuse.
  std::uint32_t fresh_a =
      alloc.tag_for(SliceId{0}, 0, Endpoint{SwitchId{50}, PortId{1}}, egress);
  std::uint32_t fresh_b =
      alloc.tag_for(SliceId{0}, 0, Endpoint{SwitchId{51}, PortId{1}}, egress);
  ASSERT_TRUE(decode_tag(fresh_a).has_value());
  EXPECT_EQ(decode_tag(fresh_a)->ingress_agg, 0u);
  EXPECT_EQ(decode_tag(fresh_b)->ingress_agg, 1u);
}

TEST(TagAllocatorGc, RetagRederivesAfterRecycling) {
  // A stored tag can go stale: its aggregate id drains and is re-issued to a
  // *different* endpoint. retag() must re-derive through the allocator so a
  // reactivated path never aliases another endpoint's transit rules.
  TagAllocator alloc;
  Endpoint egress{SwitchId{99}, PortId{1}};
  Endpoint original{SwitchId{1}, PortId{1}};
  std::uint32_t stored = alloc.tag_for(SliceId{3}, 7, original, egress);
  alloc.retain(stored);
  alloc.release(stored);  // path deactivated: ingress id 0 recycled

  // Another bearer grabs the recycled ingress id 0 for a different endpoint.
  std::uint32_t squatter =
      alloc.tag_for(SliceId{3}, 7, Endpoint{SwitchId{2}, PortId{1}}, egress);
  alloc.retain(squatter);
  EXPECT_EQ(decode_tag(squatter)->ingress_agg, 0u);

  // Reactivation re-derives: the original endpoint now interns a new id, and
  // the (slice, clause) dimensions survive the re-derivation.
  std::uint32_t fresh = alloc.retag(stored, original, egress);
  EXPECT_NE(fresh, squatter);
  auto decoded = decode_tag(fresh);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->slice.value, 3u);
  EXPECT_EQ(decoded->clause, 7u);
  EXPECT_NE(decoded->ingress_agg, 0u);
}

TEST(TagAllocatorGc, ChurnDoesNotExhaustIdSpace) {
  // More open/close cycles than the 10-bit egress space could hold without
  // GC: every cycle fully drains, so the allocator stays at one live id.
  TagAllocator alloc;
  Endpoint ingress{SwitchId{1}, PortId{1}};
  for (std::uint64_t i = 0; i < 3000; ++i) {
    std::uint32_t tag = alloc.tag_for(SliceId{0}, 0, ingress,
                                      Endpoint{SwitchId{1000 + i}, PortId{2}});
    alloc.retain(tag);
    alloc.release(tag);
    ASSERT_LE(alloc.egress_aggregates(), 1u) << "cycle " << i;
  }
  EXPECT_GE(alloc.ids_recycled(), 3000u);
}

}  // namespace
}  // namespace softmow
