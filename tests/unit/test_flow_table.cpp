#include <gtest/gtest.h>

#include "dataplane/flow_table.h"

namespace softmow::dataplane {
namespace {

Packet make_packet(UeId ue = UeId{1}, PrefixId prefix = PrefixId{9}) {
  Packet p;
  p.ue = ue;
  p.dst_prefix = prefix;
  return p;
}

TEST(Match, EmptyMatchesEverything) {
  Match m;
  Packet p = make_packet();
  EXPECT_TRUE(m.matches(p, PortId{1}, BsGroupId{}));
  EXPECT_EQ(m.specificity(), 0);
}

TEST(Match, InPortField) {
  Match m;
  m.in_port = PortId{3};
  Packet p = make_packet();
  EXPECT_TRUE(m.matches(p, PortId{3}, BsGroupId{}));
  EXPECT_FALSE(m.matches(p, PortId{4}, BsGroupId{}));
}

TEST(Match, LabelMatchesTopOfStackOnly) {
  Match m;
  m.label = 42;
  Packet p = make_packet();
  EXPECT_FALSE(m.matches(p, PortId{1}, BsGroupId{}));  // no label at all
  p.labels.push_back(Label{42, 1});
  EXPECT_TRUE(m.matches(p, PortId{1}, BsGroupId{}));
  p.labels.push_back(Label{7, 2});  // 42 buried under 7
  EXPECT_FALSE(m.matches(p, PortId{1}, BsGroupId{}));
}

TEST(Match, UeAndPrefixAndGroup) {
  Match m;
  m.ue = UeId{1};
  m.dst_prefix = PrefixId{9};
  m.bs_group = BsGroupId{5};
  Packet p = make_packet();
  EXPECT_TRUE(m.matches(p, PortId{1}, BsGroupId{5}));
  EXPECT_FALSE(m.matches(p, PortId{1}, BsGroupId{6}));
  p.ue = UeId{2};
  EXPECT_FALSE(m.matches(p, PortId{1}, BsGroupId{5}));
}

TEST(Match, VersionField) {
  Match m;
  m.version = 3;
  Packet p = make_packet();
  EXPECT_FALSE(m.matches(p, PortId{1}, BsGroupId{}));
  p.version = 3;
  EXPECT_TRUE(m.matches(p, PortId{1}, BsGroupId{}));
}

TEST(FlowTable, HigherPriorityWins) {
  FlowTable t;
  FlowRule low;
  low.cookie = 1;
  low.priority = 10;
  low.actions = {drop()};
  FlowRule high;
  high.cookie = 2;
  high.priority = 20;
  high.actions = {output(PortId{1})};
  ASSERT_TRUE(t.install(low).ok());
  ASSERT_TRUE(t.install(high).ok());
  Packet p = make_packet();
  FlowRule* hit = t.lookup(p, PortId{1});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, 2u);
}

TEST(FlowTable, SpecificityBreaksPriorityTies) {
  FlowTable t;
  FlowRule generic;
  generic.cookie = 1;
  generic.priority = 10;
  FlowRule specific;
  specific.cookie = 2;
  specific.priority = 10;
  specific.match.ue = UeId{1};
  ASSERT_TRUE(t.install(generic).ok());
  ASSERT_TRUE(t.install(specific).ok());
  Packet p = make_packet();
  EXPECT_EQ(t.lookup(p, PortId{1})->cookie, 2u);
  Packet other = make_packet(UeId{99});
  EXPECT_EQ(t.lookup(other, PortId{1})->cookie, 1u);
}

TEST(FlowTable, InstallReplacesSameCookie) {
  FlowTable t;
  FlowRule r;
  r.cookie = 7;
  r.priority = 1;
  ASSERT_TRUE(t.install(r).ok());
  r.priority = 5;
  ASSERT_TRUE(t.install(r).ok());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rules().front().priority, 5);
}

TEST(FlowTable, InstallRejectsAmbiguousDuplicate) {
  // Identical (priority, match) under a different cookie: the tie would be
  // broken only by cookie order, silently shadowing one of the two.
  FlowTable t;
  FlowRule a;
  a.cookie = 1;
  a.priority = 10;
  a.match.ue = UeId{1};
  a.actions = {output(PortId{1})};
  ASSERT_TRUE(t.install(a).ok());

  FlowRule b = a;
  b.cookie = 2;
  b.actions = {output(PortId{2})};
  auto rejected = t.install(b);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), ErrorCode::kConflict);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rules().front().cookie, 1u);
}

TEST(FlowTable, InstallAllowsSameMatchAtDifferentPriority) {
  // Make-before-break (§6) layers a new rule *above* the old one — same
  // match, higher priority — which must stay legal.
  FlowTable t;
  FlowRule old_rule;
  old_rule.cookie = 1;
  old_rule.priority = 100;
  old_rule.match.ue = UeId{1};
  FlowRule new_rule;
  new_rule.cookie = 2;
  new_rule.priority = 200;
  new_rule.match.ue = UeId{1};
  ASSERT_TRUE(t.install(old_rule).ok());
  ASSERT_TRUE(t.install(new_rule).ok());
  Packet p = make_packet();
  EXPECT_EQ(t.lookup(p, PortId{1})->cookie, 2u);
}

TEST(FlowTable, InstallReplacesIdenticalRuleUnderSameCookie) {
  FlowTable t;
  FlowRule r;
  r.cookie = 7;
  r.priority = 10;
  r.match.ue = UeId{1};
  r.actions = {output(PortId{1})};
  ASSERT_TRUE(t.install(r).ok());
  r.actions = {output(PortId{2})};  // re-route under the same identity
  ASSERT_TRUE(t.install(r).ok());
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rules().front().actions.front().port, PortId{2});
}

TEST(FlowTable, RemoveByCookieAndMatch) {
  FlowTable t;
  FlowRule a;
  a.cookie = 1;
  a.match.ue = UeId{1};
  FlowRule b;
  b.cookie = 2;
  b.match.ue = UeId{2};
  ASSERT_TRUE(t.install(a).ok());
  ASSERT_TRUE(t.install(b).ok());
  EXPECT_EQ(*t.remove_by_cookie(1), 1u);
  EXPECT_EQ(t.remove_by_cookie(1).code(), ErrorCode::kNotFound);
  Match m;
  m.ue = UeId{2};
  EXPECT_EQ(*t.remove_by_match(m), 1u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowTable, LookupCountsPacketsAndBytes) {
  FlowTable t;
  FlowRule r;
  r.cookie = 1;
  ASSERT_TRUE(t.install(r).ok());
  Packet p = make_packet();
  p.payload_bytes = 1000;
  p.labels.push_back(Label{1, 1});  // +4 header bytes
  (void)t.lookup(p, PortId{1});
  (void)t.lookup(p, PortId{1});
  EXPECT_EQ(t.rules().front().packet_count, 2u);
  EXPECT_EQ(t.rules().front().byte_count, 2008u);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable t;
  FlowRule r;
  r.cookie = 1;
  r.match.ue = UeId{5};
  ASSERT_TRUE(t.install(r).ok());
  Packet p = make_packet(UeId{6});
  EXPECT_EQ(t.lookup(p, PortId{1}), nullptr);
}

}  // namespace
}  // namespace softmow::dataplane
