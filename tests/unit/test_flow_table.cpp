#include <gtest/gtest.h>

#include "dataplane/flow_table.h"

namespace softmow::dataplane {
namespace {

Packet make_packet(UeId ue = UeId{1}, PrefixId prefix = PrefixId{9}) {
  Packet p;
  p.ue = ue;
  p.dst_prefix = prefix;
  return p;
}

TEST(Match, EmptyMatchesEverything) {
  Match m;
  Packet p = make_packet();
  EXPECT_TRUE(m.matches(p, PortId{1}, BsGroupId{}));
  EXPECT_EQ(m.specificity(), 0);
}

TEST(Match, InPortField) {
  Match m;
  m.in_port = PortId{3};
  Packet p = make_packet();
  EXPECT_TRUE(m.matches(p, PortId{3}, BsGroupId{}));
  EXPECT_FALSE(m.matches(p, PortId{4}, BsGroupId{}));
}

TEST(Match, LabelMatchesTopOfStackOnly) {
  Match m;
  m.label = 42;
  Packet p = make_packet();
  EXPECT_FALSE(m.matches(p, PortId{1}, BsGroupId{}));  // no label at all
  p.labels.push_back(Label{42, 1});
  EXPECT_TRUE(m.matches(p, PortId{1}, BsGroupId{}));
  p.labels.push_back(Label{7, 2});  // 42 buried under 7
  EXPECT_FALSE(m.matches(p, PortId{1}, BsGroupId{}));
}

TEST(Match, UeAndPrefixAndGroup) {
  Match m;
  m.ue = UeId{1};
  m.dst_prefix = PrefixId{9};
  m.bs_group = BsGroupId{5};
  Packet p = make_packet();
  EXPECT_TRUE(m.matches(p, PortId{1}, BsGroupId{5}));
  EXPECT_FALSE(m.matches(p, PortId{1}, BsGroupId{6}));
  p.ue = UeId{2};
  EXPECT_FALSE(m.matches(p, PortId{1}, BsGroupId{5}));
}

TEST(Match, VersionField) {
  Match m;
  m.version = 3;
  Packet p = make_packet();
  EXPECT_FALSE(m.matches(p, PortId{1}, BsGroupId{}));
  p.version = 3;
  EXPECT_TRUE(m.matches(p, PortId{1}, BsGroupId{}));
}

TEST(FlowTable, HigherPriorityWins) {
  FlowTable t;
  FlowRule low;
  low.cookie = 1;
  low.priority = 10;
  low.actions = {drop()};
  FlowRule high;
  high.cookie = 2;
  high.priority = 20;
  high.actions = {output(PortId{1})};
  t.install(low);
  t.install(high);
  Packet p = make_packet();
  FlowRule* hit = t.lookup(p, PortId{1});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, 2u);
}

TEST(FlowTable, SpecificityBreaksPriorityTies) {
  FlowTable t;
  FlowRule generic;
  generic.cookie = 1;
  generic.priority = 10;
  FlowRule specific;
  specific.cookie = 2;
  specific.priority = 10;
  specific.match.ue = UeId{1};
  t.install(generic);
  t.install(specific);
  Packet p = make_packet();
  EXPECT_EQ(t.lookup(p, PortId{1})->cookie, 2u);
  Packet other = make_packet(UeId{99});
  EXPECT_EQ(t.lookup(other, PortId{1})->cookie, 1u);
}

TEST(FlowTable, InstallReplacesSameCookie) {
  FlowTable t;
  FlowRule r;
  r.cookie = 7;
  r.priority = 1;
  t.install(r);
  r.priority = 5;
  t.install(r);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rules().front().priority, 5);
}

TEST(FlowTable, RemoveByCookieAndMatch) {
  FlowTable t;
  FlowRule a;
  a.cookie = 1;
  a.match.ue = UeId{1};
  FlowRule b;
  b.cookie = 2;
  b.match.ue = UeId{2};
  t.install(a);
  t.install(b);
  EXPECT_EQ(t.remove_by_cookie(1), 1u);
  EXPECT_EQ(t.remove_by_cookie(1), 0u);
  Match m;
  m.ue = UeId{2};
  EXPECT_EQ(t.remove_by_match(m), 1u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowTable, LookupCountsPacketsAndBytes) {
  FlowTable t;
  FlowRule r;
  r.cookie = 1;
  t.install(r);
  Packet p = make_packet();
  p.payload_bytes = 1000;
  p.labels.push_back(Label{1, 1});  // +4 header bytes
  (void)t.lookup(p, PortId{1});
  (void)t.lookup(p, PortId{1});
  EXPECT_EQ(t.rules().front().packet_count, 2u);
  EXPECT_EQ(t.rules().front().byte_count, 2008u);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable t;
  FlowRule r;
  r.cookie = 1;
  r.match.ue = UeId{5};
  t.install(r);
  Packet p = make_packet(UeId{6});
  EXPECT_EQ(t.lookup(p, PortId{1}), nullptr);
}

}  // namespace
}  // namespace softmow::dataplane
