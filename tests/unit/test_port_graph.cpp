#include <gtest/gtest.h>

#include "nos/port_graph.h"

namespace softmow::nos {
namespace {

southbound::PortDesc port(std::uint64_t id) {
  southbound::PortDesc d;
  d.port = PortId{id};
  d.peer = dataplane::PeerKind::kSwitch;
  return d;
}

TEST(PortKey, RoundTrips) {
  NodeKey k = port_key(SwitchId{42}, PortId{7});
  EXPECT_EQ(key_switch(k), SwitchId{42});
  EXPECT_EQ(key_port(k), PortId{7});
  EXPECT_EQ(key_endpoint(k), (Endpoint{SwitchId{42}, PortId{7}}));
}

TEST(PortGraph, PhysicalSwitchIsFreeToCross) {
  Nib nib;
  SwitchRecord rec;
  rec.id = SwitchId{1};
  rec.ports[PortId{1}] = port(1);
  rec.ports[PortId{2}] = port(2);
  nib.upsert_switch(rec);
  Graph g = build_port_graph(nib);
  auto path = g.shortest_path(port_key(SwitchId{1}, PortId{1}),
                              port_key(SwitchId{1}, PortId{2}), Metric::kHops);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->metrics.hop_count, 0);
  EXPECT_DOUBLE_EQ(path->metrics.latency_us, 0);
}

TEST(PortGraph, GSwitchUsesVfabricCosts) {
  Nib nib;
  SwitchRecord rec;
  rec.id = SwitchId{1};
  rec.is_gswitch = true;
  rec.ports[PortId{1}] = port(1);
  rec.ports[PortId{2}] = port(2);
  rec.ports[PortId{3}] = port(3);
  rec.vfabric = {
      southbound::VFabricEntry{PortId{1}, PortId{2}, EdgeMetrics{100, 3, 1e6}},
      // No entry for 1 -> 3: those ports are internally disconnected.
  };
  nib.upsert_switch(rec);
  Graph g = build_port_graph(nib);
  auto path = g.shortest_path(port_key(SwitchId{1}, PortId{1}),
                              port_key(SwitchId{1}, PortId{2}), Metric::kHops);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->metrics.hop_count, 3);
  EXPECT_DOUBLE_EQ(path->metrics.latency_us, 100);
  EXPECT_FALSE(g.shortest_path(port_key(SwitchId{1}, PortId{1}),
                               port_key(SwitchId{1}, PortId{3}), Metric::kHops)
                   .ok());
}

TEST(PortGraph, DownPortsAreExcludedOnPhysicalSwitches) {
  Nib nib;
  SwitchRecord rec;
  rec.id = SwitchId{1};
  rec.ports[PortId{1}] = port(1);
  auto down = port(2);
  down.up = false;
  rec.ports[PortId{2}] = down;
  nib.upsert_switch(rec);
  Graph g = build_port_graph(nib);
  EXPECT_FALSE(g.shortest_path(port_key(SwitchId{1}, PortId{1}),
                               port_key(SwitchId{1}, PortId{2}), Metric::kHops)
                   .ok());
}

TEST(PortGraph, LinksConnectSwitchesBothWays) {
  Nib nib;
  for (std::uint64_t s : {1, 2}) {
    SwitchRecord rec;
    rec.id = SwitchId{s};
    rec.ports[PortId{1}] = port(1);
    nib.upsert_switch(rec);
  }
  nib.upsert_link({SwitchId{1}, PortId{1}}, {SwitchId{2}, PortId{1}},
                  EdgeMetrics{5000, 1, 1e6});
  Graph g = build_port_graph(nib);
  auto forward = g.shortest_path(port_key(SwitchId{1}, PortId{1}),
                                 port_key(SwitchId{2}, PortId{1}), Metric::kHops);
  auto back = g.shortest_path(port_key(SwitchId{2}, PortId{1}),
                              port_key(SwitchId{1}, PortId{1}), Metric::kHops);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(forward->metrics.hop_count, 1);
}

TEST(PortGraph, DownLinksExcluded) {
  Nib nib;
  for (std::uint64_t s : {1, 2}) {
    SwitchRecord rec;
    rec.id = SwitchId{s};
    rec.ports[PortId{1}] = port(1);
    nib.upsert_switch(rec);
  }
  nib.upsert_link({SwitchId{1}, PortId{1}}, {SwitchId{2}, PortId{1}}, {});
  nib.set_links_at_up({SwitchId{1}, PortId{1}}, false);
  Graph g = build_port_graph(nib);
  EXPECT_FALSE(g.shortest_path(port_key(SwitchId{1}, PortId{1}),
                               port_key(SwitchId{2}, PortId{1}), Metric::kHops)
                   .ok());
}

TEST(HopsFromPath, ExtractsPerSwitchTraversals) {
  // (1,p1) -> (1,p2) | link | (2,p1) -> (2,p2)
  GraphPath path;
  path.nodes = {port_key(SwitchId{1}, PortId{1}), port_key(SwitchId{1}, PortId{2}),
                port_key(SwitchId{2}, PortId{1}), port_key(SwitchId{2}, PortId{2})};
  auto hops = hops_from_path(path);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], (RouteHop{SwitchId{1}, PortId{1}, PortId{2}}));
  EXPECT_EQ(hops[1], (RouteHop{SwitchId{2}, PortId{1}, PortId{2}}));
}

TEST(HopsFromPath, MiddleboxDetourYieldsTwoHopsOnOneSwitch) {
  // Stage stitching repeats the waypoint node; the switch is traversed
  // in->mb and then mb->out.
  GraphPath path;
  path.nodes = {port_key(SwitchId{1}, PortId{1}), port_key(SwitchId{1}, PortId{5}),
                port_key(SwitchId{1}, PortId{5}),  // repeated waypoint
                port_key(SwitchId{1}, PortId{2})};
  auto hops = hops_from_path(path);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], (RouteHop{SwitchId{1}, PortId{1}, PortId{5}}));
  EXPECT_EQ(hops[1], (RouteHop{SwitchId{1}, PortId{5}, PortId{2}}));
}

}  // namespace
}  // namespace softmow::nos
