// TraceDriver (live control-plane replay) and the probe-based data-plane
// audit.
#include <gtest/gtest.h>

#include "softmow/softmow.h"

namespace softmow {
namespace {

class DriverAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo::ScenarioParams params = topo::small_scenario_params(9);
    params.trace.duration_minutes = 60;
    params.trace.peak_bearers_per_min = 3000;
    params.trace.peak_handovers_per_min = 500;
    scenario = topo::build_scenario(std::move(params));
  }

  std::unique_ptr<topo::Scenario> scenario;
};

TEST_F(DriverAuditTest, ReplayDrivesTheRealApplications) {
  topo::TraceDriverParams params;
  params.event_scale = 0.01;  // ~30 bearers/min network-wide
  topo::TraceDriver driver(*scenario, params);
  auto report = driver.replay(0, 30);

  EXPECT_EQ(report.minutes_replayed, 30u);
  EXPECT_GT(report.bearers_requested, 20u);
  EXPECT_GT(report.attaches, 0u);
  // The vast majority of trace bearers are plain best-effort and must be
  // servable; tolerate a small failing tail.
  EXPECT_LT(report.bearers_failed * 10, report.bearers_requested + 10);

  // Leaf-level stats moved (>=: re-activating an ancestor-handled bearer
  // re-requests it internally, which also counts as an arrival).
  std::uint64_t bearer_arrivals = 0;
  for (reca::Controller* leaf : scenario->mgmt->leaves())
    bearer_arrivals += scenario->apps->mobility(*leaf).stats().bearer_arrivals;
  EXPECT_GE(bearer_arrivals, report.bearers_requested);
}

TEST_F(DriverAuditTest, ReplayMediatesHandoversAtTheRightLevels) {
  topo::TraceDriverParams params;
  params.event_scale = 0.05;
  topo::TraceDriver driver(*scenario, params);
  auto report = driver.replay(0, 60);
  if (report.handovers_requested == 0) GTEST_SKIP() << "no handover events in this slice";

  std::uint64_t mediated = 0;
  for (const auto& [level, count] : report.handovers_by_level) mediated += count;
  // Every successful handover was mediated somewhere (leaf or ancestor).
  EXPECT_GE(mediated + report.handovers_failed, report.handovers_requested);
}

TEST_F(DriverAuditTest, AuditIsCleanAfterReplay) {
  topo::TraceDriverParams params;
  params.event_scale = 0.01;
  params.idle_probability = 1.0;  // leave live paths behind (idle->active)
  topo::TraceDriver driver(*scenario, params);
  auto report = driver.replay(0, 20);
  ASSERT_GT(report.rules_at_end, 0u);

  auto audit = mgmt::audit_data_plane(scenario->net);
  EXPECT_GT(audit.classifiers_probed, 0u);
  EXPECT_TRUE(audit.clean()) << audit.findings.size() << " findings, first at "
                             << (audit.findings.empty()
                                     ? "-"
                                     : audit.findings[0].access_switch.str());
  EXPECT_EQ(audit.label_violations, 0u);
}

TEST_F(DriverAuditTest, AuditFlagsABrokenPath) {
  // Install a bearer, then sabotage a transit rule so the probe punts.
  auto& mp = *scenario->mgmt;
  BsGroupId group = scenario->partition.group_regions[0].front();
  BsId bs = scenario->net.bs_group(group)->members.front();
  auto& mobility = scenario->apps->mobility(*mp.leaf_of_group(group));
  ASSERT_TRUE(mobility.ue_attach(UeId{1}, bs).ok());
  apps::BearerRequest request;
  request.ue = UeId{1};
  request.bs = bs;
  request.dst_prefix = PrefixId{3};
  ASSERT_TRUE(mobility.request_bearer(request).ok());
  ASSERT_TRUE(mgmt::audit_data_plane(scenario->net).clean());

  // Remove every rule from a core switch on the path (rule vandalism).
  auto first = mgmt::audit_data_plane(scenario->net);
  Packet probe;
  probe.ue = UeId{1};
  probe.dst_prefix = PrefixId{3};
  auto walk = scenario->net.inject_uplink(probe, bs);
  ASSERT_EQ(walk.outcome, dataplane::DeliveryReport::Outcome::kExternal);
  ASSERT_GE(walk.packet.trace.size(), 2u);
  SwitchId victim = walk.packet.trace[1].sw;
  scenario->net.sw(victim)->table().clear();

  auto after = mgmt::audit_data_plane(scenario->net);
  EXPECT_FALSE(after.clean());
  EXPECT_GE(after.punted, 1u);
  ASSERT_FALSE(after.findings.empty());
  EXPECT_EQ(after.findings[0].outcome, dataplane::DeliveryReport::Outcome::kToController);
  (void)first;
}

TEST_F(DriverAuditTest, AuditCountsNothingOnEmptyDataPlane) {
  auto report = mgmt::audit_data_plane(scenario->net);
  EXPECT_EQ(report.classifiers_probed, 0u);
  EXPECT_TRUE(report.clean());
}

}  // namespace
}  // namespace softmow
