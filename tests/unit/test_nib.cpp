#include <gtest/gtest.h>

#include "nos/nib.h"

namespace softmow::nos {
namespace {

southbound::PortDesc port(std::uint64_t id,
                          dataplane::PeerKind peer = dataplane::PeerKind::kSwitch) {
  southbound::PortDesc d;
  d.port = PortId{id};
  d.peer = peer;
  return d;
}

SwitchRecord make_switch(std::uint64_t id, std::size_t ports) {
  SwitchRecord rec;
  rec.id = SwitchId{id};
  for (std::uint64_t p = 1; p <= ports; ++p) rec.ports[PortId{p}] = port(p);
  return rec;
}

TEST(Nib, SwitchUpsertAndRemove) {
  Nib nib;
  nib.upsert_switch(make_switch(1, 3));
  nib.upsert_switch(make_switch(2, 2));
  EXPECT_EQ(nib.switch_count(), 2u);
  EXPECT_EQ(nib.total_ports(), 5u);
  ASSERT_NE(nib.sw(SwitchId{1}), nullptr);
  EXPECT_NE(nib.sw(SwitchId{1})->port(PortId{2}), nullptr);
  ASSERT_TRUE(nib.remove_switch(SwitchId{1}).ok());
  EXPECT_EQ(nib.sw(SwitchId{1}), nullptr);
}

TEST(Nib, LinkEndpointsNormalized) {
  Nib nib;
  Endpoint a{SwitchId{2}, PortId{1}};
  Endpoint b{SwitchId{1}, PortId{3}};
  nib.upsert_link(a, b, {});
  nib.upsert_link(b, a, {});  // same link, either order
  EXPECT_EQ(nib.links().size(), 1u);
  EXPECT_TRUE(nib.endpoint_linked(a));
  EXPECT_TRUE(nib.endpoint_linked(b));
  ASSERT_TRUE(nib.remove_link(a, b).ok());
  EXPECT_TRUE(nib.links().empty());
}

TEST(Nib, RemoveSwitchDropsItsLinks) {
  Nib nib;
  nib.upsert_switch(make_switch(1, 2));
  nib.upsert_switch(make_switch(2, 2));
  nib.upsert_link({SwitchId{1}, PortId{1}}, {SwitchId{2}, PortId{1}}, {});
  ASSERT_TRUE(nib.remove_switch(SwitchId{2}).ok());
  EXPECT_TRUE(nib.links().empty());
}

TEST(Nib, LinkUpDownByEndpoint) {
  Nib nib;
  Endpoint a{SwitchId{1}, PortId{1}}, b{SwitchId{2}, PortId{1}};
  nib.upsert_link(a, b, {});
  nib.set_links_at_up(a, false);
  EXPECT_FALSE(nib.links().front().up);
  EXPECT_TRUE(nib.set_link_up(a, b, true).ok());
  EXPECT_TRUE(nib.links().front().up);
  EXPECT_EQ(nib.set_link_up(a, {SwitchId{9}, PortId{1}}, true).code(),
            ErrorCode::kNotFound);
}

TEST(Nib, ReupsertingDownLinkBringsItUp) {
  Nib nib;
  Endpoint a{SwitchId{1}, PortId{1}}, b{SwitchId{2}, PortId{1}};
  nib.upsert_link(a, b, {});
  nib.set_links_at_up(a, false);
  nib.upsert_link(a, b, {});  // rediscovered: link is alive again
  EXPECT_TRUE(nib.links().front().up);
}

TEST(Nib, GbsWithdrawalRequiresOwnership) {
  Nib nib;
  southbound::GBsAnnounce g;
  g.gbs = GBsId{5};
  g.attached_switch = SwitchId{1};
  nib.upsert_gbs(g);
  // A withdrawal from a different G-switch must not remove the record.
  southbound::GBsAnnounce foreign;
  foreign.gbs = GBsId{5};
  foreign.withdrawn = true;
  foreign.attached_switch = SwitchId{2};
  nib.upsert_gbs(foreign);
  EXPECT_NE(nib.gbs(GBsId{5}), nullptr);
  // The owner's withdrawal works.
  southbound::GBsAnnounce own = foreign;
  own.attached_switch = SwitchId{1};
  nib.upsert_gbs(own);
  EXPECT_EQ(nib.gbs(GBsId{5}), nullptr);
}

TEST(Nib, MiddleboxByType) {
  Nib nib;
  southbound::GMiddleboxAnnounce m1;
  m1.gmb = MiddleboxId{1};
  m1.type = dataplane::MiddleboxType::kFirewall;
  southbound::GMiddleboxAnnounce m2;
  m2.gmb = MiddleboxId{2};
  m2.type = dataplane::MiddleboxType::kIds;
  nib.upsert_middlebox(m1);
  nib.upsert_middlebox(m2);
  EXPECT_EQ(nib.middleboxes().size(), 2u);
  EXPECT_EQ(nib.middleboxes_of_type(dataplane::MiddleboxType::kFirewall).size(), 1u);
  m1.withdrawn = true;
  nib.upsert_middlebox(m1);
  EXPECT_EQ(nib.middleboxes().size(), 1u);
}

TEST(Nib, ExternalRoutesDeduplicatePerEgressPrefix) {
  Nib nib;
  Endpoint egress{SwitchId{1}, PortId{2}};
  nib.upsert_external_route({egress, PrefixId{1}, 10, 100});
  nib.upsert_external_route({egress, PrefixId{1}, 12, 120});  // replaces
  nib.upsert_external_route({egress, PrefixId{2}, 9, 90});
  EXPECT_EQ(nib.external_route_count(), 2u);
  auto routes = nib.external_routes(PrefixId{1});
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_DOUBLE_EQ(routes[0].hops, 12);
  EXPECT_EQ(nib.all_external_routes().size(), 2u);
}

TEST(Nib, RouteChangesDoNotBumpTopologyVersion) {
  Nib nib;
  auto v = nib.version();
  nib.upsert_external_route({{SwitchId{1}, PortId{1}}, PrefixId{1}, 1, 1});
  EXPECT_EQ(nib.version(), v);
  nib.upsert_switch(make_switch(1, 1));
  EXPECT_GT(nib.version(), v);
}

TEST(Nib, SubscribersFireOnTopologyChange) {
  Nib nib;
  int fired = 0;
  nib.subscribe([&] { ++fired; });
  nib.upsert_switch(make_switch(1, 1));
  EXPECT_EQ(fired, 1);
  nib.upsert_link({SwitchId{1}, PortId{1}}, {SwitchId{2}, PortId{1}}, {});
  EXPECT_EQ(fired, 2);
}

TEST(Nib, SetVfabricOnUnknownSwitchFails) {
  Nib nib;
  EXPECT_EQ(nib.set_vfabric(SwitchId{9}, {}).code(), ErrorCode::kNotFound);
  nib.upsert_switch(make_switch(9, 1));
  EXPECT_TRUE(nib.set_vfabric(SwitchId{9}, {southbound::VFabricEntry{}}).ok());
  EXPECT_EQ(nib.sw(SwitchId{9})->vfabric.size(), 1u);
}

}  // namespace
}  // namespace softmow::nos
