#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.h"

namespace softmow {
namespace {

TEST(SampleSet, BasicMoments) {
  SampleSet s;
  s.add_all({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.sum(), 15);
  EXPECT_DOUBLE_EQ(s.mean(), 3);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 5);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SampleSet, EmptySetIsSafe) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1), 0);
  EXPECT_TRUE(s.cdf_series().empty());
}

TEST(SampleSet, PercentilesInterpolate) {
  SampleSet s;
  s.add_all({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25);
  EXPECT_DOUBLE_EQ(s.median(), 25);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(SampleSet, PercentileIsMonotone) {
  SampleSet s;
  for (int i = 0; i < 50; ++i) s.add((i * 37) % 101);
  double last = -1;
  for (double p = 0; p <= 100; p += 2.5) {
    double v = s.percentile(p);
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST(SampleSet, CdfMatchesDefinition) {
  SampleSet s;
  s.add_all({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(s.cdf_at(0), 0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf_at(3), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(99), 1.0);
}

TEST(SampleSet, CdfSeriesEndsAtOne) {
  SampleSet s;
  s.add_all({5, 1, 9, 3});
  auto series = s.cdf_series(4);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.front().second, 0.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
  EXPECT_DOUBLE_EQ(series.back().first, 9);
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_GE(series[i].first, series[i - 1].first);
}

TEST(SampleSet, AddAfterQueryStaysCorrect) {
  SampleSet s;
  s.add(5);
  EXPECT_DOUBLE_EQ(s.max(), 5);
  s.add(10);  // re-sort required internally
  EXPECT_DOUBLE_EQ(s.max(), 10);
}

TEST(BoxStatsTest, SummarizesQuartiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  BoxStats box = box_stats(s);
  EXPECT_DOUBLE_EQ(box.min, 1);
  EXPECT_DOUBLE_EQ(box.max, 100);
  EXPECT_NEAR(box.median, 50.5, 1e-9);
  EXPECT_NEAR(box.mean, 50.5, 1e-9);
  EXPECT_LT(box.p25, box.median);
  EXPECT_GT(box.p75, box.median);
}

TEST(TextTable, AlignsAndPads) {
  TextTable t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yy"});  // short rows padded
  std::string s = t.str();
  EXPECT_NE(s.find("| a  | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| x  | 1           |"), std::string::npos);
  EXPECT_NE(s.find("| yy |             |"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.14159, 0), "3");
}

}  // namespace
}  // namespace softmow
