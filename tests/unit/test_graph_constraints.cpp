// Edge cases of the constraint machinery shared by routing and vFabric:
// EdgeMetrics composition, PathConstraints semantics, and constrained
// k-shortest-path behaviour.
#include <gtest/gtest.h>

#include "core/graph.h"

namespace softmow {
namespace {

TEST(EdgeMetricsTest, SeriesCompositionAddsAndBottlenecks) {
  EdgeMetrics a{10, 2, 500};
  EdgeMetrics b{5, 1, 300};
  EdgeMetrics c = a.then(b);
  EXPECT_DOUBLE_EQ(c.latency_us, 15);
  EXPECT_DOUBLE_EQ(c.hop_count, 3);
  EXPECT_DOUBLE_EQ(c.bandwidth_kbps, 300);  // min of the two
  // Composition with the identity (0 latency, 0 hops, inf bandwidth).
  EdgeMetrics identity{0, 0, std::numeric_limits<double>::infinity()};
  EdgeMetrics d = identity.then(a);
  EXPECT_DOUBLE_EQ(d.latency_us, a.latency_us);
  EXPECT_DOUBLE_EQ(d.bandwidth_kbps, a.bandwidth_kbps);
}

TEST(PathConstraintsTest, SatisfiedBySemantics) {
  PathConstraints c;
  EXPECT_TRUE(c.satisfied_by(EdgeMetrics{1e9, 1e9, 0}));  // unconstrained

  c.max_latency_us = 100;
  c.max_hops = 5;
  c.min_bandwidth_kbps = 50;
  EXPECT_TRUE(c.satisfied_by(EdgeMetrics{100, 5, 50}));   // boundaries inclusive
  EXPECT_FALSE(c.satisfied_by(EdgeMetrics{100.1, 5, 50}));
  EXPECT_FALSE(c.satisfied_by(EdgeMetrics{100, 5.1, 50}));
  EXPECT_FALSE(c.satisfied_by(EdgeMetrics{100, 5, 49.9}));
}

class ConstrainedGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three parallel routes 1 -> 5 with distinct trade-offs:
    //   fast+thin:   1-2-5 (latency 10, 2 hops, 100 kbps)
    //   slow+fat:    1-3-5 (latency 50, 2 hops, 1e6 kbps)
    //   long+cheap:  1-4a-4b-5 (latency 9, 3 hops, 1e6 kbps)
    g.add_edge(1, 2, {5, 1, 100});
    g.add_edge(2, 5, {5, 1, 100});
    g.add_edge(1, 3, {25, 1, 1e6});
    g.add_edge(3, 5, {25, 1, 1e6});
    g.add_edge(1, 40, {3, 1, 1e6});
    g.add_edge(40, 41, {3, 1, 1e6});
    g.add_edge(41, 5, {3, 1, 1e6});
  }
  Graph g;
};

TEST_F(ConstrainedGraphTest, UnconstrainedPicksLowestLatency) {
  auto path = g.shortest_path(1, 5, Metric::kLatency);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->metrics.latency_us, 9);  // the 3-hop route
}

TEST_F(ConstrainedGraphTest, HopBoundForcesThe2HopRoute) {
  PathConstraints c;
  c.max_hops = 2;
  auto path = g.shortest_path(1, 5, Metric::kLatency, c);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->metrics.hop_count, 2);
  EXPECT_DOUBLE_EQ(path->metrics.latency_us, 10);  // fast+thin wins among 2-hop
}

TEST_F(ConstrainedGraphTest, BandwidthAndHopsTogetherForceSlowFat) {
  PathConstraints c;
  c.max_hops = 2;
  c.min_bandwidth_kbps = 500;
  auto path = g.shortest_path(1, 5, Metric::kLatency, c);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->metrics.latency_us, 50);  // only 1-3-5 satisfies both
  EXPECT_GE(path->metrics.bandwidth_kbps, 500);
}

TEST_F(ConstrainedGraphTest, ImpossibleComboIsUnsatisfiable) {
  PathConstraints c;
  c.max_hops = 2;
  c.max_latency_us = 20;
  c.min_bandwidth_kbps = 500;  // 2 hops + <=20us + fat: nothing qualifies
  auto path = g.shortest_path(1, 5, Metric::kLatency, c);
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.code(), ErrorCode::kUnsatisfiable);
}

TEST_F(ConstrainedGraphTest, KShortestWithConstraintsFiltersButStaysSorted) {
  PathConstraints c;
  c.max_hops = 2;
  auto paths = g.k_shortest_paths(1, 5, 5, Metric::kLatency, c);
  ASSERT_EQ(paths.size(), 2u);  // the two 2-hop routes survive
  EXPECT_LE(paths[0].cost(Metric::kLatency), paths[1].cost(Metric::kLatency));
  for (const GraphPath& p : paths) EXPECT_LE(p.metrics.hop_count, 2);
}

TEST_F(ConstrainedGraphTest, KShortestBandwidthFloorExcludesThinRoutes) {
  PathConstraints c;
  c.min_bandwidth_kbps = 500;
  auto paths = g.k_shortest_paths(1, 5, 5, Metric::kLatency, c);
  for (const GraphPath& p : paths) EXPECT_GE(p.metrics.bandwidth_kbps, 500);
  ASSERT_EQ(paths.size(), 2u);  // fast+thin excluded
}

TEST_F(ConstrainedGraphTest, KZeroReturnsNothing) {
  EXPECT_TRUE(g.k_shortest_paths(1, 5, 0, Metric::kLatency).empty());
}

}  // namespace
}  // namespace softmow
