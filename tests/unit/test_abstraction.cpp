#include <gtest/gtest.h>

#include "nos/routing.h"
#include "reca/abstraction.h"

namespace softmow::reca {
namespace {

southbound::PortDesc port(std::uint64_t id,
                          dataplane::PeerKind peer = dataplane::PeerKind::kSwitch,
                          std::uint64_t egress = ~0ull) {
  southbound::PortDesc d;
  d.port = PortId{id};
  d.peer = peer;
  if (egress != ~0ull) d.egress = EgressId{egress};
  return d;
}

/// Region: switch 1 -- switch 2; switch 1 carries a radio port (group 5,
/// border) and a radio port (group 6, internal); switch 2 has an egress
/// port (p8) and a dangling switch port (p3, cross-region candidate).
class AbstractionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    nos::SwitchRecord s1;
    s1.id = SwitchId{1};
    s1.ports[PortId{1}] = port(1);
    s1.ports[PortId{7}] = port(7, dataplane::PeerKind::kBsGroup);
    s1.ports[PortId{9}] = port(9, dataplane::PeerKind::kBsGroup);
    nib.upsert_switch(s1);
    nos::SwitchRecord s2;
    s2.id = SwitchId{2};
    s2.ports[PortId{1}] = port(1);
    s2.ports[PortId{3}] = port(3);  // no link: border candidate
    s2.ports[PortId{8}] = port(8, dataplane::PeerKind::kExternal, 1);
    nib.upsert_switch(s2);
    nib.upsert_link({SwitchId{1}, PortId{1}}, {SwitchId{2}, PortId{1}},
                    EdgeMetrics{5000, 1, 1e6});

    southbound::GBsAnnounce border_group;
    border_group.gbs = GBsId{5};
    border_group.attached_switch = SwitchId{1};
    border_group.attached_port = PortId{7};
    border_group.constituent_groups = {BsGroupId{5}};
    nib.upsert_gbs(border_group);
    southbound::GBsAnnounce internal_group;
    internal_group.gbs = GBsId{6};
    internal_group.attached_switch = SwitchId{1};
    internal_group.attached_port = PortId{9};
    internal_group.constituent_groups = {BsGroupId{6}};
    nib.upsert_gbs(internal_group);

    abstraction.set_border_gbs({GBsId{5}});
    abstraction.recompute();
  }

  nos::Nib nib;
  nos::RoutingService routing{&nib};
  TopologyAbstraction abstraction{ControllerId{3}, 1, &nib, &routing};
};

TEST_F(AbstractionFixture, GSwitchIdEncodesController) {
  EXPECT_EQ(abstraction.gswitch_id(), gswitch_id_for(ControllerId{3}));
  EXPECT_TRUE(is_gswitch_id(abstraction.gswitch_id()));
  EXPECT_FALSE(is_gswitch_id(SwitchId{17}));
}

TEST_F(AbstractionFixture, ExposesExactlyTheBorderPorts) {
  const auto& features = abstraction.features();
  EXPECT_TRUE(features.is_gswitch);
  // Exposed: egress p8, dangling p3, border G-BS port, internal-aggregate
  // G-BS port (the internal group exists). Internal link ports are hidden.
  EXPECT_EQ(features.ports.size(), 4u);
  int external = 0, cross = 0, radio = 0;
  for (const auto& p : features.ports) {
    external += p.peer == dataplane::PeerKind::kExternal;
    cross += p.peer == dataplane::PeerKind::kSwitch;
    radio += p.peer == dataplane::PeerKind::kBsGroup;
  }
  EXPECT_EQ(external, 1);
  EXPECT_EQ(cross, 1);
  EXPECT_EQ(radio, 2);
}

TEST_F(AbstractionFixture, PortMappingRoundTrips) {
  for (const auto& p : abstraction.features().ports) {
    auto local = abstraction.to_local(p.port);
    ASSERT_TRUE(local.has_value());
    EXPECT_EQ(abstraction.to_exposed(*local), p.port);
  }
  EXPECT_FALSE(abstraction.to_local(PortId{999}).has_value());
  EXPECT_FALSE(abstraction.to_exposed(Endpoint{SwitchId{1}, PortId{1}}).has_value());
}

TEST_F(AbstractionFixture, ExposedPortNumbersStableAcrossRecomputes) {
  auto before = abstraction.features().ports;
  abstraction.mark_dirty();
  abstraction.recompute();
  auto after = abstraction.features().ports;
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(abstraction.to_local(before[i].port), abstraction.to_local(after[i].port));
  }
}

TEST_F(AbstractionFixture, VfabricMatchesRealShortestPaths) {
  // Entry from the border G-BS port (1:7) to the egress (2:8) must equal the
  // real path: cross switch 1 (free), 1 link, cross switch 2 (free).
  PortId from = *abstraction.to_exposed(Endpoint{SwitchId{1}, PortId{7}});
  PortId to = *abstraction.to_exposed(Endpoint{SwitchId{2}, PortId{8}});
  bool found = false;
  for (const auto& entry : abstraction.features().vfabric) {
    if (entry.from == from && entry.to == to) {
      EXPECT_DOUBLE_EQ(entry.metrics.hop_count, 1);
      EXPECT_DOUBLE_EQ(entry.metrics.latency_us, 5000);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AbstractionFixture, BorderGbsExposedOneToOneInternalAggregated) {
  const auto& gbs = abstraction.exposed_gbs();
  ASSERT_EQ(gbs.size(), 2u);
  bool saw_border = false, saw_internal = false;
  for (const auto& g : gbs) {
    if (g.gbs == GBsId{5}) {
      saw_border = true;
      EXPECT_TRUE(g.is_border);
      EXPECT_EQ(g.attached_switch, abstraction.gswitch_id());
    }
    if (g.gbs == internal_gbs_id_for(ControllerId{3})) {
      saw_internal = true;
      EXPECT_FALSE(g.is_border);
      EXPECT_EQ(g.constituent_groups, std::vector<BsGroupId>{BsGroupId{6}});
    }
  }
  EXPECT_TRUE(saw_border);
  EXPECT_TRUE(saw_internal);
}

TEST_F(AbstractionFixture, ExposedGbsIdMapsBorderIdentityAndCollapsesInternal) {
  EXPECT_EQ(abstraction.exposed_gbs_id(GBsId{5}), GBsId{5});
  EXPECT_EQ(abstraction.exposed_gbs_id(GBsId{6}), internal_gbs_id_for(ControllerId{3}));
}

TEST_F(AbstractionFixture, ConstituentsFanOutForTheAggregate) {
  PortId agg_port;
  for (const auto& g : abstraction.exposed_gbs()) {
    if (!g.is_border) agg_port = g.attached_port;
  }
  auto fan = abstraction.constituents(agg_port);
  ASSERT_EQ(fan.size(), 1u);  // one internal group in this fixture
  EXPECT_EQ(fan[0], (Endpoint{SwitchId{1}, PortId{9}}));
  // Border ports map to their single endpoint.
  PortId border_port = *abstraction.to_exposed(Endpoint{SwitchId{1}, PortId{7}});
  EXPECT_EQ(abstraction.constituents(border_port).size(), 1u);
  EXPECT_TRUE(abstraction.constituents(PortId{999}).empty());
}

TEST_F(AbstractionFixture, GMiddleboxAggregatesPerType) {
  southbound::GMiddleboxAnnounce m1;
  m1.gmb = MiddleboxId{1};
  m1.type = dataplane::MiddleboxType::kFirewall;
  m1.total_capacity_kbps = 100;
  m1.utilization = 0.5;
  m1.attached_switch = SwitchId{1};
  m1.attached_port = PortId{1};
  southbound::GMiddleboxAnnounce m2 = m1;
  m2.gmb = MiddleboxId{2};
  m2.total_capacity_kbps = 300;
  m2.utilization = 0.1;
  nib.upsert_middlebox(m1);
  nib.upsert_middlebox(m2);
  abstraction.recompute();
  ASSERT_EQ(abstraction.exposed_gmbs().size(), 1u);
  const auto& agg = abstraction.exposed_gmbs()[0];
  EXPECT_DOUBLE_EQ(agg.total_capacity_kbps, 400);
  EXPECT_NEAR(agg.utilization, (100 * 0.5 + 300 * 0.1) / 400.0, 1e-12);
}

TEST_F(AbstractionFixture, DownCrossPortIsNotExposed) {
  nos::SwitchRecord s2 = *nib.sw(SwitchId{2});
  s2.ports[PortId{3}].up = false;
  nib.upsert_switch(s2);
  abstraction.recompute();
  for (const auto& p : abstraction.features().ports)
    EXPECT_NE(abstraction.to_local(p.port), (Endpoint{SwitchId{2}, PortId{3}}));
}

TEST_F(AbstractionFixture, StatsCountDiscoveredVsExposed) {
  auto stats = abstraction.stats();
  EXPECT_EQ(stats.switches, 2u);
  EXPECT_EQ(stats.ports, 6u);
  EXPECT_EQ(stats.total_ports, 6u);  // no access switches in this NIB
  EXPECT_EQ(stats.links, 1u);
  EXPECT_EQ(stats.exposed_ports, 4u);
}

}  // namespace
}  // namespace softmow::reca
