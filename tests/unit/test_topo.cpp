#include <gtest/gtest.h>

#include <set>

#include "baseline/lte_baseline.h"
#include "core/stats.h"
#include "topo/bs_group_inference.h"
#include "topo/iplane_model.h"
#include "topo/lte_trace.h"
#include "topo/region_partitioner.h"
#include "topo/wan_generator.h"

namespace softmow::topo {
namespace {

// ---------------------------------------------------------------- inference
TEST(BsGroupInference, EveryStationInExactlyOneGroup) {
  Rng rng(3);
  WeightedAdjacency<BsId> graph;
  for (std::uint64_t b = 0; b < 60; ++b) graph.add_node(BsId{b});
  for (int e = 0; e < 150; ++e)
    graph.add(BsId{rng.uniform_u64(0, 59)}, BsId{rng.uniform_u64(0, 59)},
              rng.uniform(1, 100));
  auto groups = infer_bs_groups(graph);
  std::set<BsId> seen;
  for (const auto& g : groups) {
    EXPECT_LE(g.members.size(), 6u);
    EXPECT_GE(g.members.size(), 1u);
    for (BsId bs : g.members) EXPECT_TRUE(seen.insert(bs).second) << bs.str();
  }
  EXPECT_EQ(seen.size(), 60u);
}

TEST(BsGroupInference, IsolatedStationsBecomeSingletons) {
  WeightedAdjacency<BsId> graph;
  graph.add_node(BsId{1});
  graph.add_node(BsId{2});
  auto groups = infer_bs_groups(graph);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(BsGroupInference, TightCliqueStaysTogether) {
  // A 4-clique with heavy weights plus a weakly-attached outsider pair.
  WeightedAdjacency<BsId> graph;
  for (std::uint64_t a = 0; a < 4; ++a)
    for (std::uint64_t b = a + 1; b < 4; ++b) graph.add(BsId{a}, BsId{b}, 100);
  graph.add(BsId{4}, BsId{5}, 50);
  graph.add(BsId{0}, BsId{4}, 1);  // weak bridge, removed first
  auto groups = infer_bs_groups(graph);
  // Expect {0..3} and {4,5} (the whole graph is 6 nodes; it freezes as one
  // component unless the bridge is cut first — max size 6 keeps it whole).
  // So tighten: max_group_size 4 forces the cut at the weak edge.
  auto tight = infer_bs_groups(graph, InferenceParams{4});
  bool clique_together = false;
  for (const auto& g : tight) {
    std::set<BsId> m(g.members.begin(), g.members.end());
    if (m == std::set<BsId>{BsId{0}, BsId{1}, BsId{2}, BsId{3}}) clique_together = true;
  }
  EXPECT_TRUE(clique_together);
  (void)groups;
}

TEST(BsGroupInference, IntraWeightFractionBeatsRandomAssignment) {
  Rng rng(9);
  WeightedAdjacency<BsId> graph;
  // Geometric-ish graph: strong local structure.
  std::vector<std::pair<double, double>> at(80);
  for (auto& p : at) p = {rng.uniform(0, 10), rng.uniform(0, 10)};
  for (std::size_t a = 0; a < at.size(); ++a)
    for (std::size_t b = a + 1; b < at.size(); ++b) {
      double dx = at[a].first - at[b].first, dy = at[a].second - at[b].second;
      if (dx * dx + dy * dy < 2.0) graph.add(BsId{a}, BsId{b}, 100 / (1 + dx * dx + dy * dy));
    }
  auto groups = infer_bs_groups(graph);
  double inferred = intra_group_weight_fraction(graph, groups);

  // Random grouping of the same sizes.
  std::vector<BsId> shuffled;
  for (std::uint64_t b = 0; b < 80; ++b) shuffled.push_back(BsId{b});
  rng.shuffle(shuffled);
  std::vector<InferredGroup> random_groups;
  std::size_t cursor = 0;
  for (const auto& g : groups) {
    InferredGroup rg;
    for (std::size_t i = 0; i < g.members.size() && cursor < shuffled.size(); ++i)
      rg.members.push_back(shuffled[cursor++]);
    random_groups.push_back(rg);
  }
  double random = intra_group_weight_fraction(graph, random_groups);
  EXPECT_GT(inferred, random);
}

// ---------------------------------------------------------------- WAN
TEST(WanGenerator, ProducesRequestedScaleAndConnectivity) {
  dataplane::PhysicalNetwork net;
  WanParams params;
  params.switches = 100;
  params.pops = 10;
  auto topo = generate_wan(net, params);
  EXPECT_EQ(topo.switches.size(), 100u);
  Graph g = net.build_core_graph();
  EXPECT_TRUE(g.connected_from(topo.switches.front().value));
}

TEST(WanGenerator, DeterministicUnderSeed) {
  dataplane::PhysicalNetwork n1, n2;
  WanParams params;
  params.switches = 60;
  params.pops = 6;
  auto t1 = generate_wan(n1, params);
  auto t2 = generate_wan(n2, params);
  EXPECT_EQ(n1.links().size(), n2.links().size());
  EXPECT_EQ(t1.pop_centers.size(), t2.pop_centers.size());
  for (std::size_t p = 0; p < t1.pop_centers.size(); ++p) {
    EXPECT_DOUBLE_EQ(t1.pop_centers[p].x, t2.pop_centers[p].x);
  }
}

TEST(WanGenerator, EgressPointsAreSpreadAndPrefixStable) {
  dataplane::PhysicalNetwork net;
  WanParams params;
  params.switches = 80;
  params.pops = 8;
  auto topo = generate_wan(net, params);
  Rng rng(4);
  auto egresses = place_egress_points(net, topo, 8, rng);
  EXPECT_EQ(egresses.size(), 8u);
  // All distinct attach switches.
  std::set<SwitchId> attach;
  for (EgressId e : egresses) attach.insert(net.egress(e)->attach.sw);
  EXPECT_EQ(attach.size(), 8u);
}

// ---------------------------------------------------------------- partition
TEST(RegionPartitioner, RegionsAreConnectedAndCoverEverything) {
  dataplane::PhysicalNetwork net;
  WanParams params;
  params.switches = 120;
  params.pops = 12;
  auto wan = generate_wan(net, params);
  // A few groups attached around the plane.
  std::vector<BsGroupId> groups;
  Rng rng(5);
  for (int g = 0; g < 40; ++g) {
    SwitchId at = rng.choice(wan.switches);
    groups.push_back(net.add_bs_group(at, dataplane::BsGroupTopology::kRing,
                                      net.switch_location(at)));
  }
  auto partition = partition_regions(net, groups, wan.switches, 4);
  make_regions_connected(net, partition);

  std::set<SwitchId> all;
  for (const auto& region : partition.switch_regions) {
    for (SwitchId sw : region) EXPECT_TRUE(all.insert(sw).second);
  }
  EXPECT_EQ(all.size(), wan.switches.size());

  // Each region's subgraph is connected.
  for (const auto& region : partition.switch_regions) {
    if (region.size() <= 1) continue;
    std::set<SwitchId> members(region.begin(), region.end());
    std::set<SwitchId> seen{region.front()};
    std::vector<SwitchId> stack{region.front()};
    while (!stack.empty()) {
      SwitchId sw = stack.back();
      stack.pop_back();
      for (LinkId id : net.links()) {
        const dataplane::Link* l = net.link(id);
        SwitchId peer;
        if (l->a.sw == sw) peer = l->b.sw;
        else if (l->b.sw == sw) peer = l->a.sw;
        else continue;
        if (members.contains(peer) && seen.insert(peer).second) stack.push_back(peer);
      }
    }
    EXPECT_EQ(seen.size(), members.size());
  }

  // Every group lives in the region of its attach switch.
  std::map<SwitchId, std::size_t> region_of;
  for (std::size_t r = 0; r < partition.switch_regions.size(); ++r)
    for (SwitchId sw : partition.switch_regions[r]) region_of[sw] = r;
  for (std::size_t r = 0; r < partition.group_regions.size(); ++r) {
    for (BsGroupId g : partition.group_regions[r])
      EXPECT_EQ(region_of.at(net.bs_group(g)->core_attach.sw), r);
  }
}

// ---------------------------------------------------------------- trace
TEST(LteTrace, DiurnalShapeBounds) {
  for (double minute = 0; minute < 1440; minute += 30) {
    double v = LteTrace::diurnal(minute, 0.35);
    EXPECT_GE(v, 0.35);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
  // Afternoon beats 3am.
  EXPECT_GT(LteTrace::diurnal(14 * 60, 0.35), LteTrace::diurnal(3 * 60, 0.35));
}

class TraceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net = new dataplane::PhysicalNetwork();
    WanParams wp;
    wp.switches = 60;
    wp.pops = 6;
    wan = new WanTopology(generate_wan(*net, wp));
    LteTraceParams tp;
    tp.base_stations = 150;
    tp.duration_minutes = 1440;  // a full day so the diurnal peak is covered
    tp.peak_bearers_per_min = 5000;
    tp.peak_ue_arrivals_per_min = 500;
    tp.peak_handovers_per_min = 700;
    trace = new LteTrace(generate_lte_trace(*net, *wan, tp));
  }
  static void TearDownTestSuite() {
    delete trace;
    delete wan;
    delete net;
  }
  static dataplane::PhysicalNetwork* net;
  static WanTopology* wan;
  static LteTrace* trace;
};
dataplane::PhysicalNetwork* TraceFixture::net = nullptr;
WanTopology* TraceFixture::wan = nullptr;
LteTrace* TraceFixture::trace = nullptr;

TEST_F(TraceFixture, GroupsRespectInferenceBound) {
  EXPECT_EQ(trace->stations.size(), 150u);
  for (BsGroupId g : trace->groups)
    EXPECT_LE(net->bs_group(g)->members.size(), 6u);
}

TEST_F(TraceFixture, BinsMatchDurationAndIndexSpace) {
  ASSERT_EQ(trace->bins.size(), 1440u);
  for (const TraceBin& bin : trace->bins) {
    EXPECT_EQ(bin.bearer_arrivals.size(), trace->groups.size());
    for (const auto& [a, b, count] : bin.handovers) {
      EXPECT_LT(a, trace->groups.size());
      EXPECT_LT(b, trace->groups.size());
      EXPECT_LT(a, b);
      EXPECT_GT(count, 0u);
    }
  }
}

TEST_F(TraceFixture, RatesAreInTheRequestedBallpark) {
  SampleSet bearers;
  for (const TraceBin& bin : trace->bins)
    bearers.add(static_cast<double>(bin.total_bearers()));
  // Peak-hour bins approach the configured network-wide peak.
  EXPECT_GT(bearers.max(), 2500);
  EXPECT_LT(bearers.max(), 10000);
  EXPECT_GT(bearers.min(), 500);  // off-peak floor
}

TEST_F(TraceFixture, GroupLoadAggregatesEvents) {
  double total = 0;
  for (const auto& [g, load] : trace->group_load) total += load;
  double expected = 0;
  for (const TraceBin& bin : trace->bins)
    expected += static_cast<double>(bin.total_bearers()) + bin.total_ue_arrivals() +
                2.0 * bin.total_handovers();  // handovers load both endpoints
  EXPECT_NEAR(total, expected, 1e-6);
}

TEST_F(TraceFixture, AdjacencyMatchesBsGraphAggregation) {
  for (const auto& [key, weight] : trace->group_adjacency.edges()) {
    EXPECT_GT(weight, 0);
    EXPECT_NE(key.first, key.second);
  }
  EXPECT_GT(trace->group_adjacency.edge_count(), 0u);
}

// ---------------------------------------------------------------- iplane
TEST(IPlaneModel, DeterministicPerSnapshot) {
  dataplane::PhysicalNetwork net;
  SwitchId sw = net.add_switch({10, 10});
  EgressId e = net.add_egress(sw, {10, 10});
  IPlaneParams params;
  params.prefixes = 50;
  IPlaneModel m1(net, params), m2(net, params);
  for (PrefixId p : m1.prefixes()) {
    auto c1 = m1.cost(e, p), c2 = m2.cost(e, p);
    ASSERT_TRUE(c1 && c2);
    EXPECT_DOUBLE_EQ(c1->hops, c2->hops);
    EXPECT_DOUBLE_EQ(c1->latency_us, c2->latency_us);
  }
}

TEST(IPlaneModel, SnapshotsChangeRoutes) {
  dataplane::PhysicalNetwork net;
  EgressId e = net.add_egress(net.add_switch({10, 10}), {10, 10});
  IPlaneParams params;
  params.prefixes = 50;
  IPlaneModel model(net, params);
  auto before = model.cost(e, PrefixId{3});
  model.set_snapshot(1);
  auto after = model.cost(e, PrefixId{3});
  ASSERT_TRUE(before && after);
  EXPECT_NE(before->hops, after->hops);
}

TEST(IPlaneModel, NearEgressIsCheaper) {
  dataplane::PhysicalNetwork net;
  EgressId near = net.add_egress(net.add_switch(), {50, 50});
  EgressId far = net.add_egress(net.add_switch(), {-150, -150});
  IPlaneParams params;
  params.prefixes = 200;
  IPlaneModel model(net, params);
  // On average across prefixes, the central egress beats the corner one.
  double near_total = 0, far_total = 0;
  for (PrefixId p : model.prefixes()) {
    near_total += model.cost(near, p)->hops;
    far_total += model.cost(far, p)->hops;
  }
  EXPECT_LT(near_total, far_total);
}

TEST(IPlaneModel, UnknownInputsReturnNullopt) {
  dataplane::PhysicalNetwork net;
  EgressId e = net.add_egress(net.add_switch());
  IPlaneModel model(net, IPlaneParams{.prefixes = 10});
  EXPECT_FALSE(model.cost(e, PrefixId{999}).has_value());
  EXPECT_FALSE(model.cost(EgressId{42}, PrefixId{1}).has_value());
  EXPECT_FALSE(model.cost(e, PrefixId{}).has_value());
}

// ---------------------------------------------------------------- baseline
TEST(LteBaselineTest, SamplesInternalPlusExternal) {
  dataplane::PhysicalNetwork net;
  SwitchId a = net.add_switch({0, 0});
  SwitchId b = net.add_switch({1, 0});
  (void)net.connect(a, b);
  BsGroupId g = net.add_bs_group(a);
  EgressId pgw = net.add_egress(b, {1, 0});

  struct Fixed : apps::ExternalPathProvider {
    std::vector<PrefixId> prefixes() const override { return {PrefixId{1}}; }
    std::optional<apps::ExternalCost> cost(EgressId, PrefixId) const override {
      return apps::ExternalCost{10, 20000};
    }
  } provider;

  baseline::LteBaseline lte(net, pgw);
  auto sample = lte.sample(g, PrefixId{1}, provider);
  ASSERT_TRUE(sample.ok());
  // 1 access hop + 1 core hop + 10 external.
  EXPECT_DOUBLE_EQ(sample->hops, 12);
  EXPECT_FALSE(lte.sample(BsGroupId{99}, PrefixId{1}, provider).ok());
}

TEST(LteBaselineTest, FlatDiscoveryCountScalesWithTopology) {
  dataplane::PhysicalNetwork net;
  SwitchId a = net.add_switch();
  SwitchId b = net.add_switch();
  std::uint64_t before = baseline::flat_discovery_message_count(net);
  (void)net.connect(a, b);
  std::uint64_t after = baseline::flat_discovery_message_count(net);
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace softmow::topo
