// Property suite for core::FlatMap / core::FlatSet against the standard
// reference containers: the flat tables must agree with
// std::unordered_map under arbitrary insert/erase/rehash churn, and their
// iteration order must be a pure function of the operation sequence (the
// determinism contract of DESIGN §12).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flat_map.h"
#include "core/ids.h"
#include "core/rng.h"

namespace softmow {
namespace {

using core::FlatMap;
using core::FlatSet;

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.try_emplace(7, 70).second);
  EXPECT_FALSE(m.try_emplace(7, 71).second);
  EXPECT_EQ(m.at(7), 70);
  m[9] = 90;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(9));
  EXPECT_FALSE(m.contains(8));
  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.find(9)->second, 90);
  EXPECT_EQ(m.find(7), m.end());
}

TEST(FlatMap, InsertOrAssignReplaces) {
  FlatMap<int, std::string> m;
  m.insert_or_assign(1, "a");
  m.insert_or_assign(1, "b");
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(1), "b");
}

TEST(FlatMap, IterationIsInsertionOrder) {
  FlatMap<std::uint64_t, int> m;
  // Keys chosen to collide under masking at small capacities.
  const std::uint64_t keys[] = {1024, 64, 3, 1 << 20, 7, 4096, 11};
  int v = 0;
  for (std::uint64_t k : keys) m[k] = v++;
  std::vector<std::uint64_t> seen;
  for (const auto& [k, val] : m) seen.push_back(k);
  EXPECT_EQ(seen, std::vector<std::uint64_t>(std::begin(keys), std::end(keys)));
}

TEST(FlatMap, EraseSwapsLastIntoHole) {
  FlatMap<int, int> m;
  for (int i = 0; i < 5; ++i) m[i] = i;
  m.erase(1);  // documented perturbation: 4 moves into position 1
  std::vector<int> seen;
  for (const auto& [k, val] : m) seen.push_back(k);
  EXPECT_EQ(seen, (std::vector<int>{0, 4, 2, 3}));
}

TEST(FlatMap, IdAndEndpointAndPairKeys) {
  FlatMap<SwitchId, int> by_switch;
  by_switch[SwitchId{3}] = 30;
  EXPECT_EQ(by_switch.at(SwitchId{3}), 30);

  FlatMap<Endpoint, int> by_endpoint;
  by_endpoint[Endpoint{SwitchId{1}, PortId{2}}] = 12;
  EXPECT_TRUE(by_endpoint.contains(Endpoint{SwitchId{1}, PortId{2}}));
  EXPECT_FALSE(by_endpoint.contains(Endpoint{SwitchId{2}, PortId{1}}));

  FlatMap<std::pair<UeId, BearerId>, double> by_pair;
  by_pair[{UeId{5}, BearerId{6}}] = 1.5;
  EXPECT_EQ(by_pair.at({UeId{5}, BearerId{6}}), 1.5);
}

// The core property: a FlatMap driven by a random operation sequence holds
// exactly the same mapping as std::unordered_map driven by the same
// sequence, through enough churn to force many rehashes and erase shifts.
TEST(FlatMapProperty, AgreesWithUnorderedMapUnderChurn) {
  Rng rng(20260809);
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    // Small key space => plenty of insert/erase/reinsert collisions; strided
    // keys stress the power-of-two index.
    std::uint64_t key = rng.uniform_u64(0, 512) * 257;
    switch (rng.uniform_int(0, 3)) {
      case 0:
      case 1: {  // insert-or-assign (biased: tables should mostly grow)
        std::uint64_t value = rng.uniform_u64(0, 1u << 30);
        flat.insert_or_assign(key, value);
        ref[key] = value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(flat.erase(key), ref.erase(key));
        break;
      }
      case 3: {  // lookup
        auto fit = flat.find(key);
        auto rit = ref.find(key);
        ASSERT_EQ(fit == flat.end(), rit == ref.end());
        if (rit != ref.end()) {
          EXPECT_EQ(fit->second, rit->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Full-content agreement after the churn.
  for (const auto& [k, v] : flat) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(it->second, v);
  }
}

// Determinism: two instances fed the identical operation sequence iterate
// identically — order is a function of the operations, not of hash seeds,
// rehash history headroom (reserve), or address-space layout.
TEST(FlatMapProperty, IterationOrderIsReproducible) {
  auto drive = [](FlatMap<std::uint64_t, int>& m) {
    Rng rng(777);
    for (int op = 0; op < 5000; ++op) {
      std::uint64_t key = rng.uniform_u64(0, 300);
      if (rng.uniform(0.0, 1.0) < 0.7) {
        m.insert_or_assign(key, static_cast<int>(op));
      } else {
        m.erase(key);
      }
    }
  };
  FlatMap<std::uint64_t, int> a, b, c;
  c.reserve(4096);  // different rehash history must not change the order
  drive(a);
  drive(b);
  drive(c);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  auto ia = a.begin(), ib = b.begin(), ic = c.begin();
  for (; ia != a.end(); ++ia, ++ib, ++ic) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second, ib->second);
    EXPECT_EQ(ia->first, ic->first);
    EXPECT_EQ(ia->second, ic->second);
  }
}

TEST(FlatMapProperty, StringKeysSurviveEraseRelocation) {
  // Non-trivially-movable keys exercise the swap-with-last path: the moved
  // entry's index slot must be rebound before the key is moved from.
  FlatMap<std::string, int> flat;
  std::unordered_map<std::string, int> ref;
  Rng rng(99);
  for (int op = 0; op < 4000; ++op) {
    std::string key = "key-" + std::to_string(rng.uniform_u64(0, 200));
    if (rng.uniform(0.0, 1.0) < 0.6) {
      flat.insert_or_assign(key, op);
      ref[key] = op;
    } else {
      EXPECT_EQ(flat.erase(key), ref.erase(key));
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  for (const auto& [k, v] : flat) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(it->second, v);
  }
}

TEST(FlatSet, InsertEraseContains) {
  FlatSet<GBsId> s;
  EXPECT_TRUE(s.insert(GBsId{1}).second);
  EXPECT_FALSE(s.insert(GBsId{1}).second);
  s.insert(GBsId{2});
  s.insert(GBsId{3});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(GBsId{2}));
  EXPECT_EQ(s.erase(GBsId{2}), 1u);
  EXPECT_EQ(s.erase(GBsId{2}), 0u);
  EXPECT_FALSE(s.contains(GBsId{2}));
  // Erase swapped the last key (3) into position 1.
  std::vector<GBsId> seen(s.begin(), s.end());
  EXPECT_EQ(seen, (std::vector<GBsId>{GBsId{1}, GBsId{3}}));
}

TEST(FlatSetProperty, AgreesWithReferenceUnderChurn) {
  FlatSet<std::uint64_t> flat;
  std::map<std::uint64_t, bool> ref;  // ordered, for a stable final sweep
  Rng rng(4242);
  for (int op = 0; op < 10000; ++op) {
    std::uint64_t key = rng.uniform_u64(0, 400);
    if (rng.uniform(0.0, 1.0) < 0.65) {
      flat.insert(key);
      ref[key] = true;
    } else {
      std::size_t eref = ref.erase(key);
      EXPECT_EQ(flat.erase(key), eref);
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (const auto& [k, present] : ref) EXPECT_TRUE(flat.contains(k));
}

}  // namespace
}  // namespace softmow
