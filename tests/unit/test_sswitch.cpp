#include <gtest/gtest.h>

#include "dataplane/sswitch.h"

namespace softmow::dataplane {
namespace {

Packet ue_packet(UeId ue = UeId{1}) {
  Packet p;
  p.ue = ue;
  p.dst_prefix = PrefixId{5};
  return p;
}

class SwitchTest : public ::testing::Test {
 protected:
  Switch sw{SwitchId{1}};
};

TEST_F(SwitchTest, PortsNumberFromOne) {
  EXPECT_EQ(sw.add_port(), PortId{1});
  EXPECT_EQ(sw.add_port(PeerKind::kExternal), PortId{2});
  EXPECT_EQ(sw.port_count(), 2u);
  EXPECT_EQ(sw.port(PortId{2})->peer, PeerKind::kExternal);
  EXPECT_EQ(sw.port(PortId{9}), nullptr);
}

TEST_F(SwitchTest, TableMissPuntsAndCounts) {
  sw.add_port();
  Packet p = ue_packet();
  auto fwd = sw.process(p, PortId{1});
  EXPECT_EQ(fwd.kind, Forwarding::Kind::kTableMiss);
  EXPECT_EQ(sw.table_misses(), 1u);
  EXPECT_EQ(sw.packets_processed(), 1u);
  // The trace records the visit even on a miss.
  ASSERT_EQ(p.trace.size(), 1u);
  EXPECT_EQ(p.trace[0].sw, SwitchId{1});
}

TEST_F(SwitchTest, PushSwapPopSequence) {
  sw.add_port();
  sw.add_port();
  FlowRule rule;
  rule.cookie = 1;
  rule.actions = {push_label(Label{7, 1}), swap_label(Label{9, 1}), output(PortId{2})};
  ASSERT_TRUE(sw.table().install(rule).ok());
  Packet p = ue_packet();
  auto fwd = sw.process(p, PortId{1});
  EXPECT_EQ(fwd.kind, Forwarding::Kind::kForward);
  EXPECT_EQ(fwd.out_port, PortId{2});
  ASSERT_EQ(p.labels.size(), 1u);
  EXPECT_EQ(p.labels.back().value, 9u);
}

TEST_F(SwitchTest, PopOnEmptyStackIsAnError) {
  sw.add_port();
  FlowRule rule;
  rule.cookie = 1;
  rule.actions = {pop_label(), output(PortId{1})};
  ASSERT_TRUE(sw.table().install(rule).ok());
  Packet p = ue_packet();
  auto fwd = sw.process(p, PortId{1});
  EXPECT_EQ(fwd.kind, Forwarding::Kind::kError);
  EXPECT_EQ(sw.action_errors(), 1u);
}

TEST_F(SwitchTest, SwapOnEmptyStackIsAnError) {
  sw.add_port();
  FlowRule rule;
  rule.cookie = 1;
  rule.actions = {swap_label(Label{3, 1}), output(PortId{1})};
  ASSERT_TRUE(sw.table().install(rule).ok());
  Packet p = ue_packet();
  EXPECT_EQ(sw.process(p, PortId{1}).kind, Forwarding::Kind::kError);
}

TEST_F(SwitchTest, OutputToDownPortIsAnError) {
  sw.add_port();
  PortId out = sw.add_port();
  sw.port(out)->up = false;
  FlowRule rule;
  rule.cookie = 1;
  rule.actions = {output(out)};
  ASSERT_TRUE(sw.table().install(rule).ok());
  Packet p = ue_packet();
  EXPECT_EQ(sw.process(p, PortId{1}).kind, Forwarding::Kind::kError);
}

TEST_F(SwitchTest, ExplicitDropStopsProcessing) {
  sw.add_port();
  FlowRule rule;
  rule.cookie = 1;
  rule.actions = {drop(), output(PortId{1})};  // output after drop ignored
  ASSERT_TRUE(sw.table().install(rule).ok());
  Packet p = ue_packet();
  EXPECT_EQ(sw.process(p, PortId{1}).kind, Forwarding::Kind::kDrop);
}

TEST_F(SwitchTest, ToControllerAction) {
  sw.add_port();
  FlowRule rule;
  rule.cookie = 1;
  rule.actions = {to_controller()};
  ASSERT_TRUE(sw.table().install(rule).ok());
  Packet p = ue_packet();
  EXPECT_EQ(sw.process(p, PortId{1}).kind, Forwarding::Kind::kToController);
}

TEST_F(SwitchTest, SetVersionStampsPacket) {
  sw.add_port();
  sw.add_port();
  FlowRule rule;
  rule.cookie = 1;
  rule.actions = {set_version(4), output(PortId{2})};
  ASSERT_TRUE(sw.table().install(rule).ok());
  Packet p = ue_packet();
  (void)sw.process(p, PortId{1});
  EXPECT_EQ(p.version, 4u);
}

TEST_F(SwitchTest, SingleMasterInvariant) {
  sw.set_controller_role(ControllerId{1}, ControllerRole::kMaster);
  sw.set_controller_role(ControllerId{2}, ControllerRole::kMaster);
  EXPECT_EQ(sw.master(), ControllerId{2});
  // The old master was demoted, not removed.
  EXPECT_EQ(sw.controllers().at(ControllerId{1}), ControllerRole::kSlave);
}

TEST_F(SwitchTest, EqualRoleControllersReceiveEvents) {
  sw.set_controller_role(ControllerId{1}, ControllerRole::kMaster);
  sw.set_controller_role(ControllerId{2}, ControllerRole::kEqual);
  sw.set_controller_role(ControllerId{3}, ControllerRole::kSlave);
  auto receivers = sw.event_receivers();
  EXPECT_EQ(receivers.size(), 2u);  // master + equal, not slave
}

TEST_F(SwitchTest, RemoveControllerClearsRole) {
  sw.set_controller_role(ControllerId{1}, ControllerRole::kMaster);
  sw.remove_controller(ControllerId{1});
  EXPECT_FALSE(sw.master().has_value());
}

}  // namespace
}  // namespace softmow::dataplane
