// Property: a migration workload — a full planned cycle, an abort drill,
// and two continuous re-homing steps, with discovery traffic riding the
// sharded engine throughout — is byte-identical for any worker-thread
// count: same migration records (timings to the last ulp), same controller
// message counts, same placements, same metrics export.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "softmow/softmow.h"

namespace softmow {
namespace {

struct MigrationRunResult {
  std::vector<std::string> records;       ///< one line per MigrationRecord
  std::vector<std::string> placements;    ///< final site/rtt per leaf
  std::map<std::string, std::uint64_t> messages;  ///< controller -> handled
  std::vector<std::string> metrics;  ///< snapshot lines sans wall-clock series
};

/// Full-precision serialization: doubles print as %.17g so a single-ulp
/// divergence between thread counts breaks the comparison.
std::string record_line(const migrate::MigrationRecord& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "%zu %s -> %s %s dev=%zu rounds=%d bs=%llu bd=%llu "
                "snap=%.17g catch=%.17g flip=%.17g drain=%.17g dis=%.17g",
                r.leaf, r.leaf_name.c_str(), r.placement.site.c_str(),
                migrate::phase_name(r.final_phase), r.devices, r.catchup_rounds,
                (unsigned long long)r.bytes_snapshot, (unsigned long long)r.bytes_delta,
                r.snapshot_ms, r.catchup_ms, r.flip_ms, r.drain_ms, r.disruption_ms);
  return buf;
}

std::string sample_line(const obs::MetricSample& s) {
  char num[64];
  std::string line = s.name;
  for (const auto& [k, v] : s.labels) {
    line += '{';  // built piecewise: GCC 12 -Wrestrict FP on char*+string&&
    line += k;
    line += '=';
    line += v;
    line += '}';
  }
  std::snprintf(num, sizeof num, " c=%llu g=%.17g h=%llu/%.17g",
                (unsigned long long)s.counter_value, s.gauge_value,
                (unsigned long long)s.hist_count, s.hist_sum);
  line += num;
  for (std::uint64_t b : s.bucket_counts) {
    line += ',';
    line += std::to_string(b);
  }
  return line;
}

/// Builds the scenario fresh, binds it to a `threads`-worker engine and runs
/// the whole migration workload. Everything observable must be
/// thread-count invariant.
MigrationRunResult run_migration_plan(std::size_t threads) {
  topo::ScenarioParams params = topo::small_scenario_params();
  params.seed = 7;
  auto scenario = topo::build_scenario(params);
  auto& mp = *scenario->mgmt;
  obs::default_registry().reset_values();

  sim::ShardedSimulator::Options opts;
  opts.threads = threads;
  sim::ShardedSimulator engine(mp.natural_shard_count(), opts);
  const sim::Duration parent_delay = sim::Duration::millis(5);
  mp.bind_shards(engine, parent_delay);

  migrate::MigrationOptions mopts;
  mopts.parent_link_delay = parent_delay;  // flip rebinds shards identically
  migrate::MigrationManager mgr(*scenario, &engine, mopts);

  // Concurrent engine traffic: discovery rounds queued on every leaf shard,
  // drained at the next migration barrier.
  for (reca::Controller* leaf : mp.leaves())
    engine.schedule(leaf->shard(), sim::Duration::millis(1),
                    [leaf] { leaf->run_link_discovery(); });

  const sim::TimePoint t0 = sim::TimePoint::zero();
  auto planned = mgr.migrate_leaf(0, {"dc-east", sim::Duration::millis(6)},
                                  t0 + sim::Duration::minutes(1));
  EXPECT_TRUE(planned.ok());

  // Abort drill on another leaf, mid catch-up.
  EXPECT_TRUE(mgr.begin(1 % mp.leaf_count(), {"dc-west", sim::Duration::millis(9)},
                        t0 + sim::Duration::minutes(2))
                  .ok());
  EXPECT_TRUE(mgr.stream_snapshot().ok());
  EXPECT_TRUE(mgr.catch_up().ok());
  EXPECT_TRUE(mgr.abort("drill").ok());

  // Two continuous re-homing windows: a surge on leaf 2, then the ebb.
  migrate::RehomingPolicy policy;
  policy.max_moves_per_step = 2;
  migrate::ContinuousRehoming loop(*scenario, mgr, policy);
  std::vector<double> surge(mp.leaf_count(), 1.0);
  surge[2 % mp.leaf_count()] = 8.0;
  EXPECT_TRUE(loop.step(surge, t0 + sim::Duration::minutes(3)).ok());
  std::vector<double> ebb(mp.leaf_count(), 2.0);
  ebb[2 % mp.leaf_count()] = 0.5;
  EXPECT_TRUE(loop.step(ebb, t0 + sim::Duration::minutes(4)).ok());
  mp.unbind_shards();

  MigrationRunResult r;
  for (const migrate::MigrationRecord& rec : mgr.records())
    r.records.push_back(record_line(rec));
  for (std::size_t i = 0; i < mp.leaf_count(); ++i) {
    const mgmt::LeafPlacement& p = mp.leaf_placement(i);
    char buf[160];
    std::snprintf(buf, sizeof buf, "%zu %s rtt=%.17g", i, p.site.c_str(),
                  p.control_rtt.to_millis());
    r.placements.emplace_back(buf);
  }
  for (reca::Controller* c : mp.all_controllers())
    r.messages[c->name()] = c->messages_handled();
  for (const obs::MetricSample& s : obs::default_registry().snapshot()) {
    // The only wall-clock series this path can touch (standby sync timing);
    // everything else must match bit-for-bit.
    if (s.name == "failover_sync_us" || s.name == "failover_promote_us") continue;
    r.metrics.push_back(sample_line(s));
  }
  return r;
}

TEST(MigrationDeterminism, WorkloadByteIdenticalAcrossThreadCounts) {
  MigrationRunResult baseline = run_migration_plan(1);
  // planned + abort drill + surge window (leaf 0 consolidates back to core,
  // leaf 2 re-homes out) + ebb window (leaf 2 returns).
  ASSERT_EQ(baseline.records.size(), 5u);
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    MigrationRunResult r = run_migration_plan(threads);
    EXPECT_EQ(baseline.records, r.records) << threads << " threads";
    EXPECT_EQ(baseline.placements, r.placements) << threads << " threads";
    EXPECT_EQ(baseline.messages, r.messages) << threads << " threads";
    EXPECT_EQ(baseline.metrics, r.metrics) << threads << " threads";
  }
}

TEST(MigrationDeterminism, RepeatedRunsAreStable) {
  // Same thread count, fresh scenario each time: identical everything
  // (guards against leaked state in the manager or the standby-session
  // plumbing).
  MigrationRunResult a = run_migration_plan(4);
  MigrationRunResult b = run_migration_plan(4);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.metrics, b.metrics);
}

}  // namespace
}  // namespace softmow
