// Property tests: the DESIGN.md invariants checked across randomized
// scenarios (parameterized over seeds and region counts), not hand-picked
// topologies.
#include <gtest/gtest.h>

#include "softmow/softmow.h"

namespace softmow {
namespace {

struct Config {
  std::uint64_t seed;
  std::size_t regions;
  bool mids;
};

void PrintTo(const Config& c, std::ostream* os) {
  *os << "seed" << c.seed << "_r" << c.regions << (c.mids ? "_3level" : "_2level");
}

class InvariantTest : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    Config config = GetParam();
    topo::ScenarioParams params = topo::small_scenario_params(config.seed);
    params.regions = config.regions;
    params.with_mid_level = config.mids;
    scenario = topo::build_scenario(std::move(params));
  }

  std::unique_ptr<topo::Scenario> scenario;
};

// Invariant 2: discovery soundness & completeness — the controllers' link
// sets partition the physical link set exactly.
TEST_P(InvariantTest, DiscoveryPartitionsPhysicalLinks) {
  auto& mp = *scenario->mgmt;
  std::size_t discovered = 0;
  for (reca::Controller* c : mp.all_controllers()) discovered += c->nib().links().size();
  EXPECT_EQ(discovered, scenario->net.links().size());

  // Leaf links are physical and intra-region; ancestor links connect
  // G-switches of *distinct* children.
  for (reca::Controller* c : mp.all_controllers()) {
    for (const nos::LinkRecord& link : c->nib().links()) {
      if (c->is_leaf()) {
        EXPECT_FALSE(reca::is_gswitch_id(link.a.sw));
        EXPECT_FALSE(reca::is_gswitch_id(link.b.sw));
      } else {
        EXPECT_TRUE(reca::is_gswitch_id(link.a.sw));
        EXPECT_TRUE(reca::is_gswitch_id(link.b.sw));
        EXPECT_NE(link.a.sw, link.b.sw);
      }
    }
  }
}

// Invariant 5: vFabric truthfulness — every exposed entry equals the true
// best internal path between the mapped local endpoints.
TEST_P(InvariantTest, VfabricMatchesChildShortestPaths) {
  for (reca::Controller* leaf : scenario->mgmt->leaves()) {
    leaf->abstraction().refresh();
    const auto& features = leaf->abstraction().features();
    std::size_t checked = 0;
    for (const auto& entry : features.vfabric) {
      if (++checked > 40) break;  // sample for runtime
      auto from = leaf->abstraction().to_local(entry.from);
      auto to = leaf->abstraction().to_local(entry.to);
      ASSERT_TRUE(from && to);
      auto tree = leaf->routing().reachability(*from, Metric::kHops);
      auto it = tree.find(nos::port_key(to->sw, to->port));
      ASSERT_NE(it, tree.end());
      EXPECT_NEAR(it->second.hop_count, entry.metrics.hop_count, 1e-9);
      EXPECT_NEAR(it->second.latency_us, entry.metrics.latency_us, 1e-9);
    }
  }
}

// Invariant 5b: exposed border ports are exactly the ports with no
// locally-discovered link (plus egress/radio/middlebox attachments).
TEST_P(InvariantTest, ExposedSwitchPortsAreExactlyTheUnlinkedOnes) {
  for (reca::Controller* leaf : scenario->mgmt->leaves()) {
    leaf->abstraction().refresh();
    for (const auto& port : leaf->abstraction().features().ports) {
      auto local = leaf->abstraction().to_local(port.port);
      ASSERT_TRUE(local.has_value());
      if (port.peer == dataplane::PeerKind::kSwitch) {
        EXPECT_FALSE(leaf->nib().endpoint_linked(*local))
            << leaf->name() << " exposed an internally-linked port";
      }
    }
  }
}

// Invariants 1 + 3: bearers set up through the hierarchy always deliver
// with at most one label on the wire, and an ancestor-implemented path is
// never longer than what the leaf alone could do.
TEST_P(InvariantTest, BearersDeliverUnderSingleLabelInvariant) {
  auto& mp = *scenario->mgmt;
  std::uint64_t ue_seq = 1;
  int exercised = 0;
  for (BsGroupId group : scenario->trace.groups) {
    if (exercised >= 10) break;
    reca::Controller* leaf = mp.leaf_of_group(group);
    auto& mobility = scenario->apps->mobility(*leaf);
    BsId bs = scenario->net.bs_group(group)->members.front();
    UeId ue{ue_seq++};
    if (!mobility.ue_attach(ue, bs).ok()) continue;
    apps::BearerRequest request;
    request.ue = ue;
    request.bs = bs;
    request.dst_prefix = PrefixId{(ue_seq * 7) % 50};
    auto bearer = mobility.request_bearer(request);
    if (!bearer.ok()) continue;
    ++exercised;

    Packet pkt;
    pkt.ue = ue;
    pkt.dst_prefix = request.dst_prefix;
    auto report = scenario->net.inject_uplink(pkt, bs);
    ASSERT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal)
        << "ue " << ue.str() << " in " << leaf->name();
    EXPECT_TRUE(report.packet.labels.empty());
    EXPECT_LE(report.packet.max_depth_seen(), 1u);
  }
  EXPECT_GT(exercised, 0);
}

// Tentpole cross-check: the static verifier's verdict must agree with the
// probe audit on every scenario — both clean after bearer setup, and the
// incremental path must agree with the full pass.
TEST_P(InvariantTest, StaticVerifierAgreesWithProbeAudit) {
  auto& mp = *scenario->mgmt;
  std::uint64_t ue_seq = 9000;
  int exercised = 0;
  for (BsGroupId group : scenario->trace.groups) {
    if (exercised >= 6) break;
    auto& mobility = scenario->apps->mobility(*mp.leaf_of_group(group));
    BsId bs = scenario->net.bs_group(group)->members.front();
    UeId ue{ue_seq++};
    if (!mobility.ue_attach(ue, bs).ok()) continue;
    apps::BearerRequest request;
    request.ue = ue;
    request.bs = bs;
    request.dst_prefix = PrefixId{(ue_seq * 3) % 50};
    if (mobility.request_bearer(request).ok()) ++exercised;
  }
  EXPECT_GT(exercised, 0);

  auto audit = mgmt::audit_data_plane(scenario->net);
  verify::VerifyReport report = mp.verify_data_plane();
  std::string details = report.summary();
  for (const auto& f : report.findings) details += "\n  " + f.str();
  EXPECT_EQ(audit.clean(), report.clean()) << details;
  EXPECT_TRUE(report.clean()) << details;
  EXPECT_GT(report.classes_analyzed, 0u);
  EXPECT_EQ(report.classes_delivered, report.classes_analyzed);

  // Incremental re-verification over every access switch reproduces the
  // full-pass verdict.
  std::vector<SwitchId> dirty;
  for (SwitchId sw : scenario->net.all_switches()) {
    if (scenario->net.is_access_switch(sw)) dirty.push_back(sw);
  }
  verify::VerifyReport incremental = mp.reverify_data_plane(dirty);
  EXPECT_EQ(incremental.clean(), report.clean());
  EXPECT_EQ(incremental.classes_analyzed, report.classes_analyzed);
}

// Invariant 4 (at the app level): one executed optimization round never
// increases the cross-region handover weight and leaves a coherent control
// plane behind.
TEST_P(InvariantTest, RegionOptimizationRoundIsSafe) {
  auto& mp = *scenario->mgmt;
  // Drive some handovers along the adjacency so the logs are non-trivial.
  std::uint64_t ue_seq = 50000;
  int driven = 0;
  for (const auto& [key, w] : scenario->trace.group_adjacency.edges()) {
    if (driven >= 8) break;
    auto& mobility = scenario->apps->mobility(*mp.leaf_of_group(key.first));
    UeId ue{ue_seq++};
    BsId bs = scenario->net.bs_group(key.first)->members.front();
    if (!mobility.ue_attach(ue, bs).ok()) continue;
    // Carry a real bearer through the handover so reconfiguration has
    // installed paths and bearer records to migrate.
    apps::BearerRequest request;
    request.ue = ue;
    request.bs = bs;
    request.dst_prefix = PrefixId{(ue_seq * 7) % 50};
    (void)mobility.request_bearer(request);
    if (mobility.handover(ue, scenario->net.bs_group(key.second)->members.front()).ok())
      ++driven;
  }
  if (driven == 0) GTEST_SKIP() << "no executable handover in this seed";

  auto* opt = scenario->apps->region_opt(mp.root());
  ASSERT_NE(opt, nullptr);
  apps::RegionOptConstraints constraints;
  constraints.lb_factor = 0.0;
  constraints.ub_factor = 100.0;
  auto result = opt->optimize_round(constraints, {}, /*execute=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->final_cross_weight, result->initial_cross_weight + 1e-9);

  // Post-reconfiguration coherence: discovery still partitions the links.
  std::size_t discovered = 0;
  for (reca::Controller* c : mp.all_controllers()) discovered += c->nib().links().size();
  EXPECT_EQ(discovered, scenario->net.links().size());

  // Both checkers must accept the reconfigured data plane — in particular,
  // transferred bearers must be re-homed onto target-leaf paths (§5.3.2).
  EXPECT_TRUE(mgmt::audit_data_plane(scenario->net).clean());
  verify::VerifyReport report = mp.verify_data_plane();
  std::string details = report.summary();
  for (const auto& f : report.findings) details += "\n  " + f.str();
  EXPECT_TRUE(report.clean()) << details;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvariantTest,
    ::testing::Values(Config{11, 4, false}, Config{12, 4, false}, Config{13, 2, false},
                      Config{14, 8, false}, Config{15, 4, true}, Config{16, 4, true},
                      Config{17, 2, false}, Config{18, 8, false}),
    [](const ::testing::TestParamInfo<Config>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_r" +
             std::to_string(param_info.param.regions) +
             (param_info.param.mids ? "_3level" : "_2level");
    });

}  // namespace
}  // namespace softmow
