// Property: at a fixed seed, a discovery workload executed on the sharded
// engine is event-for-event deterministic — identical controller message
// counts, identical final NIB state, and byte-identical metrics exports —
// for any worker-thread count, and it agrees with the legacy synchronous
// delivery path on every control-plane count.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "softmow/softmow.h"

namespace softmow {
namespace {

struct RoundResult {
  std::map<std::string, std::uint64_t> messages;  ///< controller -> processed
  std::map<std::string, std::size_t> links;       ///< controller -> NIB links
  std::map<std::string, std::size_t> switches;    ///< controller -> NIB switches
  std::string metrics_json;
};

/// Builds the scenario at a fixed seed and runs one steady-state discovery
/// round (all leaves, then the root). threads == 0 selects the legacy
/// synchronous channel pump; otherwise the sharded engine runs the round
/// with that many workers. `shards` == 0 uses the hierarchy's natural count.
RoundResult run_round(std::uint64_t seed, std::size_t threads, std::size_t shards = 0) {
  topo::ScenarioParams params = topo::small_scenario_params();
  params.seed = seed;
  auto scenario = topo::build_scenario(params);
  auto& mp = *scenario->mgmt;
  for (reca::Controller* c : mp.all_controllers())
    c->discovery().stats_mutable() = nos::DiscoveryStats{};
  obs::default_registry().reset_values();

  if (threads == 0) {
    for (reca::Controller* leaf : mp.leaves()) leaf->run_link_discovery();
    mp.root().run_link_discovery();
  } else {
    sim::ShardedSimulator::Options opts;
    opts.threads = threads;
    sim::ShardedSimulator engine(shards > 0 ? shards : mp.natural_shard_count(), opts);
    mp.bind_shards(engine, sim::Duration::millis(5));
    for (reca::Controller* leaf : mp.leaves())
      engine.schedule(leaf->shard(), sim::Duration{}, [leaf] { leaf->run_link_discovery(); });
    engine.run();
    reca::Controller* root = &mp.root();
    engine.schedule(root->shard(), sim::Duration{}, [root] { root->run_link_discovery(); });
    engine.run();
    mp.unbind_shards();
  }

  RoundResult r;
  for (reca::Controller* c : mp.all_controllers()) {
    r.messages[c->name()] = c->discovery().stats().messages_processed();
    r.links[c->name()] = c->nib().links().size();
    r.switches[c->name()] = c->nib().switch_count();
  }
  r.metrics_json = obs::to_json(obs::default_registry(), nullptr);
  return r;
}

TEST(ShardDeterminism, EngineMatchesLegacySynchronousCounts) {
  // The sharded engine reorders deliveries in *time* but the discovery flood
  // is count-deterministic: every controller processes the same messages and
  // learns the same topology as under the legacy synchronous pump.
  for (std::uint64_t seed : {1ull, 7ull}) {
    RoundResult legacy = run_round(seed, 0);
    RoundResult engine = run_round(seed, 1);
    EXPECT_EQ(legacy.messages, engine.messages) << "seed " << seed;
    EXPECT_EQ(legacy.links, engine.links) << "seed " << seed;
    EXPECT_EQ(legacy.switches, engine.switches) << "seed " << seed;
  }
}

TEST(ShardDeterminism, ByteIdenticalAcrossThreadCounts) {
  RoundResult baseline = run_round(1, 1);
  ASSERT_FALSE(baseline.messages.empty());
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    RoundResult r = run_round(1, threads);
    EXPECT_EQ(baseline.messages, r.messages) << threads << " threads";
    EXPECT_EQ(baseline.links, r.links) << threads << " threads";
    EXPECT_EQ(baseline.switches, r.switches) << threads << " threads";
    // The full metrics export — every counter the round bumped anywhere in
    // the stack — must be byte-identical.
    EXPECT_EQ(baseline.metrics_json, r.metrics_json) << threads << " threads";
  }
}

TEST(ShardDeterminism, ShardFoldingPreservesControlPlaneCounts) {
  // --shards below the natural count folds leaf regions onto shared shards;
  // timing changes (fewer cross-shard hops) but control-plane outcomes must
  // not: same messages, same learned topology.
  RoundResult natural = run_round(1, 2);
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    RoundResult folded = run_round(1, 2, shards);
    EXPECT_EQ(natural.messages, folded.messages) << shards << " shards";
    EXPECT_EQ(natural.links, folded.links) << shards << " shards";
    EXPECT_EQ(natural.switches, folded.switches) << shards << " shards";
  }
}

struct FaultRunResult {
  std::vector<std::string> records;               ///< one line per FaultRecord
  std::map<std::string, std::uint64_t> messages;  ///< controller -> handled
  std::vector<std::string> metrics;  ///< snapshot lines sans wall-clock series
};

/// Serializes a metric sample with full precision; doubles print as %.17g so
/// any cross-thread divergence (even 1 ulp) breaks the comparison.
std::string sample_line(const obs::MetricSample& s) {
  char num[64];
  std::string line = s.name;
  for (const auto& [k, v] : s.labels) {
    line += '{';  // built piecewise: GCC 12 -Wrestrict FP on char*+string&&
    line += k;
    line += '=';
    line += v;
    line += '}';
  }
  std::snprintf(num, sizeof num, " c=%llu g=%.17g h=%llu/%.17g",
                (unsigned long long)s.counter_value, s.gauge_value,
                (unsigned long long)s.hist_count, s.hist_sum);
  line += num;
  for (std::uint64_t b : s.bucket_counts) {
    line += ',';
    line += std::to_string(b);
  }
  return line;
}

/// Builds the scenario fresh, binds it to a `threads`-worker engine and runs
/// the whole "mixed" fault plan (link flap + switch crash/restart +
/// controller failover + channel impairment) through the recovery
/// coordinator. Everything observable must be thread-count invariant.
FaultRunResult run_fault_plan(std::size_t threads) {
  topo::ScenarioParams params = topo::small_scenario_params();
  params.seed = 5;
  auto scenario = topo::build_scenario(params);
  auto& mp = *scenario->mgmt;
  obs::default_registry().reset_values();

  sim::ShardedSimulator::Options opts;
  opts.threads = threads;
  sim::ShardedSimulator engine(mp.natural_shard_count(), opts);
  const sim::Duration parent_delay = sim::Duration::millis(5);
  mp.bind_shards(engine, parent_delay);

  faults::RecoveryOptions ropts;
  ropts.parent_link_delay = parent_delay;  // failover rebinds identically
  faults::RecoveryCoordinator coord(*scenario, &engine, ropts);
  coord.harden();
  faults::FaultInjector injector(*scenario, &engine);
  faults::FaultScenario plan = faults::make_fault_plan("mixed", *scenario, 3);
  std::vector<faults::FaultRecord> records = injector.run(plan, coord);
  mp.unbind_shards();

  FaultRunResult r;
  for (const faults::FaultRecord& rec : records) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "%s L%d msgs=%llu det=%.6f mttr=%.6f flat=%.6f rep=%zu "
                  "fail=%zu rs=%zu dis=%zu bh=%zu pf=%zu vf=%zu",
                  rec.event.str().c_str(), rec.resolved_level,
                  (unsigned long long)rec.recovery_messages, rec.detection_ms,
                  rec.mttr_ms, rec.mttr_flat_ms, rec.repaired, rec.failed,
                  rec.resyncs, rec.bearers_disrupted, rec.blackholed,
                  rec.probe_failures, rec.verify_findings);
    r.records.emplace_back(line);
  }
  for (reca::Controller* c : mp.all_controllers())
    r.messages[c->name()] = c->messages_handled();
  for (const obs::MetricSample& s : obs::default_registry().snapshot()) {
    // The only wall-clock series the fault path touches: standby sync /
    // promotion timing. Everything else must match bit-for-bit.
    if (s.name == "failover_sync_us" || s.name == "failover_promote_us") continue;
    r.metrics.push_back(sample_line(s));
  }
  return r;
}

TEST(ShardDeterminism, FaultPlanEventForEventAcrossThreadCounts) {
  FaultRunResult baseline = run_fault_plan(1);
  ASSERT_FALSE(baseline.records.empty());
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    FaultRunResult r = run_fault_plan(threads);
    EXPECT_EQ(baseline.records, r.records) << threads << " threads";
    EXPECT_EQ(baseline.messages, r.messages) << threads << " threads";
    EXPECT_EQ(baseline.metrics, r.metrics) << threads << " threads";
  }
}

TEST(ShardDeterminism, RepeatedRunsAreStable) {
  // Same seed, same thread count, fresh scenario each time: identical
  // everything (guards against iteration-order or uninitialized-state leaks
  // in the engine itself).
  RoundResult a = run_round(3, 4);
  RoundResult b = run_round(3, 4);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.links, b.links);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

}  // namespace
}  // namespace softmow
