// §6 failure handling: link failures (leaf-local and cross-region) with
// path repair, label-based consistent path updates, and master->standby
// controller failover.
#include <gtest/gtest.h>

#include "mgmt/failover.h"
#include "softmow/softmow.h"

namespace softmow {
namespace {

using dataplane::DeliveryReport;
using dataplane::PhysicalNetwork;

/// A redundant two-region topology: west has two internal routes to the
/// same border switch (maskable failures, repaired by the leaf) and there
/// are two cross-region links (unmaskable failures, repaired by the root).
///
///   groupA - s1 --- s2  - s3  - s4 - egress / groupB
///             \ s2c /
///              \- s2b - s3b - s4
class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1 = net.add_switch({0, 0});
    s2 = net.add_switch({1, 0});
    s2b = net.add_switch({1, 2});
    s2c = net.add_switch({0.5, 1});
    s3 = net.add_switch({2, 0});
    s3b = net.add_switch({2, 2});
    s4 = net.add_switch({3, 0});
    l_s1_s2 = *net.connect(s1, s2);
    l_s1_s2b = *net.connect(s1, s2b);
    (void)net.connect(s1, s2c);
    (void)net.connect(s2c, s2);
    l_s2_s3 = *net.connect(s2, s3);
    l_s2b_s3b = *net.connect(s2b, s3b);
    (void)net.connect(s3, s4);
    (void)net.connect(s3b, s4);
    group_a = net.add_bs_group(s1, dataplane::BsGroupTopology::kRing, {0, 1});
    group_b = net.add_bs_group(s4, dataplane::BsGroupTopology::kRing, {3, 1});
    bs_a = net.add_base_station(group_a, {0, 1});
    net.add_base_station(group_b, {3, 1});
    egress = net.add_egress(s4, {3, -1});

    mgmt::HierarchySpec spec;
    spec.leaves.push_back(mgmt::RegionSpec{"west", {s1, s2, s2b, s2c}, {group_a}});
    spec.leaves.push_back(mgmt::RegionSpec{"east", {s3, s3b, s4}, {group_b}});
    spec.group_adjacency.add(group_a, group_b, 5.0);
    mp = std::make_unique<mgmt::ManagementPlane>(&net);
    mp->bootstrap(spec);
    suite = std::make_unique<apps::AppSuite>(*mp);

    // External route for prefix 1 at the east egress, published everywhere.
    provider.route[{egress, PrefixId{1}}] = apps::ExternalCost{10, 20000};
    suite->originate_interdomain(provider);
  }

  Result<BearerId> bearer_for(UeId ue) {
    auto& mobility = suite->mobility(mp->leaf(0));
    (void)mobility.ue_attach(ue, bs_a);
    apps::BearerRequest request;
    request.ue = ue;
    request.bs = bs_a;
    request.dst_prefix = PrefixId{1};
    return mobility.request_bearer(request);
  }

  DeliveryReport send(UeId ue) {
    Packet pkt;
    pkt.ue = ue;
    pkt.dst_prefix = PrefixId{1};
    return net.inject_uplink(pkt, bs_a);
  }

  struct MapProvider : apps::ExternalPathProvider {
    std::map<std::pair<EgressId, PrefixId>, apps::ExternalCost> route;
    std::vector<PrefixId> prefixes() const override { return {PrefixId{1}}; }
    std::optional<apps::ExternalCost> cost(EgressId e, PrefixId p) const override {
      auto it = route.find({e, p});
      if (it == route.end()) return std::nullopt;
      return it->second;
    }
  };

  PhysicalNetwork net;
  SwitchId s1, s2, s2b, s2c, s3, s3b, s4;
  LinkId l_s1_s2, l_s1_s2b, l_s2_s3, l_s2b_s3b;
  BsGroupId group_a, group_b;
  BsId bs_a;
  EgressId egress;
  std::unique_ptr<mgmt::ManagementPlane> mp;
  std::unique_ptr<apps::AppSuite> suite;
  MapProvider provider;
};

TEST_F(FailureTest, PortStatusPropagatesToLeafNib) {
  auto& west = mp->leaf(0);
  std::size_t up_before = 0;
  for (const auto& l : west.nib().links()) up_before += l.up ? 1 : 0;
  ASSERT_TRUE(net.set_link_up(l_s1_s2, false).ok());
  std::size_t up_after = 0;
  for (const auto& l : west.nib().links()) up_after += l.up ? 1 : 0;
  EXPECT_EQ(up_after + 1, up_before);
  // Recovery: the link comes back.
  ASSERT_TRUE(net.set_link_up(l_s1_s2, true).ok());
  std::size_t up_restored = 0;
  for (const auto& l : west.nib().links()) up_restored += l.up ? 1 : 0;
  EXPECT_EQ(up_restored, up_before);
}

TEST_F(FailureTest, LeafLocalFailureRepairedWithoutAncestor) {
  UeId ue{1};
  ASSERT_TRUE(bearer_for(ue).ok());
  auto before = send(ue);
  ASSERT_EQ(before.outcome, DeliveryReport::Outcome::kExternal);
  // With all links up the flow takes the direct s1-s2 hop toward s2's
  // border port (if it went via s2b, this test's premise doesn't hold).
  bool used_direct = false, used_s2c = false;
  for (const auto& hop : before.packet.trace) used_s2c |= hop.sw == s2c;
  for (const auto& hop : before.packet.trace) used_direct |= hop.sw == s2;
  if (!used_direct || used_s2c) GTEST_SKIP() << "flow did not take the direct spine";

  // Kill s1-s2: the exit border port (on s2) stays reachable via s2c, so
  // the *leaf* can mask the failure (§6) without involving the root.
  ASSERT_TRUE(net.set_link_up(l_s1_s2, false).ok());
  auto& west = mp->leaf(0);
  auto [repaired, failed] = west.repair_paths();
  EXPECT_GE(repaired, 1u);
  EXPECT_EQ(failed, 0u);

  auto after = send(ue);
  ASSERT_EQ(after.outcome, DeliveryReport::Outcome::kExternal);
  bool via_s2c = false;
  for (const auto& hop : after.packet.trace) via_s2c |= hop.sw == s2c;
  EXPECT_TRUE(via_s2c) << "repaired path should detour via s2c";
  EXPECT_LE(after.packet.max_depth_seen(), 1u);
}

TEST_F(FailureTest, CrossRegionFailureRepairedByRoot) {
  UeId ue{2};
  ASSERT_TRUE(bearer_for(ue).ok());
  auto before = send(ue);
  ASSERT_EQ(before.outcome, DeliveryReport::Outcome::kExternal);
  ASSERT_EQ(mp->root().nib().links().size(), 2u);  // two cross-region links

  bool used_s2 = false;
  for (const auto& hop : before.packet.trace) used_s2 |= hop.sw == s2;
  LinkId broken = used_s2 ? l_s2_s3 : l_s2b_s3b;
  ASSERT_TRUE(net.set_link_up(broken, false).ok());

  // §6: changes are reflected bottom-up; the leaves re-announce and the
  // root marks its inter-G-switch link down, then recomputes paths.
  mp->refresh_topology();
  auto [repaired, failed] = mp->root().repair_paths();
  // The leaves' own segments may also need repair after the re-route.
  (void)mp->leaf(0).repair_paths();
  (void)mp->leaf(1).repair_paths();
  EXPECT_GE(repaired + failed, 1u);
  EXPECT_EQ(failed, 0u);

  auto after = send(ue);
  EXPECT_EQ(after.outcome, DeliveryReport::Outcome::kExternal);
  EXPECT_LE(after.packet.max_depth_seen(), 1u);
}

TEST_F(FailureTest, ConsistentUpdatesOldLabelKeepsWorkingUntilTeardown) {
  // §6: "the new path and packets are assigned a new version number. The
  // packets with the old version number can still use old rules" — in this
  // implementation each path owns a distinct label, so in-flight packets on
  // the old label survive a classifier swap until the old path is removed.
  auto& west = mp->leaf(0);
  auto& root = mp->root();
  UeId ue{3};
  auto bearer = bearer_for(ue);
  ASSERT_TRUE(bearer.ok());
  std::size_t rules_one_path = net.total_rules();

  // A second path for the same classifier (e.g. a make-before-break update):
  // installed alongside, not replacing.
  const auto* gbs = root.nib().gbs(mgmt::gbs_id_for_group(group_a));
  ASSERT_NE(gbs, nullptr);
  nos::RoutingRequest request;
  request.source = Endpoint{gbs->attached_switch, gbs->attached_port};
  request.dst_prefix = PrefixId{1};
  auto route = root.compute_route(request);
  ASSERT_TRUE(route.ok());
  dataplane::Match classifier;
  classifier.ue = ue;
  classifier.dst_prefix = PrefixId{1};
  nos::PathSetupOptions options;
  options.priority = 200;  // the new version outranks the old classifier
  auto new_path = root.path_setup(*route, classifier, options);
  ASSERT_TRUE(new_path.ok());
  EXPECT_GT(net.total_rules(), rules_one_path);  // both rule sets coexist

  // Traffic flows on the new path; the old rules are still installed for
  // in-flight packets, and are removed only on explicit teardown.
  auto during = send(ue);
  EXPECT_EQ(during.outcome, DeliveryReport::Outcome::kExternal);
  ASSERT_TRUE(suite->mobility(west).deactivate_bearer(ue, *bearer).ok());
  auto after = send(ue);
  EXPECT_EQ(after.outcome, DeliveryReport::Outcome::kExternal);
}

TEST_F(FailureTest, LinkFlapDuringPathSetup) {
  // §6 hardening: with self-healing on, a PortStatus link-down triggers
  // repair_paths() inside the notification itself — a flap landing between
  // two bearer setups never needs a manual repair call and never leaves the
  // verifier dirty.
  for (reca::Controller* c : mp->all_controllers()) c->set_self_healing(true);

  UeId ue{11};
  ASSERT_TRUE(bearer_for(ue).ok());
  ASSERT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);

  // Down-flap the direct west spine mid-setup...
  ASSERT_TRUE(net.set_link_up(l_s1_s2, false).ok());
  EXPECT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal)
      << "self-healing should have re-routed inside the PortStatus handler";

  // ...a second bearer sets up against the degraded topology...
  UeId ue2{12};
  ASSERT_TRUE(bearer_for(ue2).ok());
  EXPECT_EQ(send(ue2).outcome, DeliveryReport::Outcome::kExternal);

  // ...and the up-flap restores capacity without disturbing either flow.
  ASSERT_TRUE(net.set_link_up(l_s1_s2, true).ok());
  EXPECT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);
  EXPECT_EQ(send(ue2).outcome, DeliveryReport::Outcome::kExternal);
  EXPECT_TRUE(mp->verify_data_plane().clean());
}

TEST_F(FailureTest, SwitchCrashWithResync) {
  UeId ue{13};
  ASSERT_TRUE(bearer_for(ue).ok());
  ASSERT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);

  // Crash the radio-port switch: its TCAM is wiped and the agent drops off
  // the southbound channel.
  southbound::SwitchAgent* agent = mp->hub().agent(s1);
  ASSERT_NE(agent, nullptr);
  std::size_t rules_before = net.sw(s1)->table().size();
  ASSERT_GT(rules_before, 0u);
  agent->crash();
  EXPECT_EQ(net.sw(s1)->table().size(), 0u);
  EXPECT_NE(send(ue).outcome, DeliveryReport::Outcome::kExternal)
      << "a crashed first hop cannot classify the flow";

  // Restart: the agent re-handshakes and the leaf resyncs every stored rule
  // of its active fully-installed paths onto the blank table.
  agent->restart();
  EXPECT_EQ(net.sw(s1)->table().size(), rules_before);
  EXPECT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);
  EXPECT_TRUE(mp->verify_data_plane().clean());
}

TEST_F(FailureTest, StandbyPromotionRestoresControlPlane) {
  auto& west = mp->leaf(0);
  mgmt::HotStandby standby(west, mp->hub());
  standby.sync();

  std::size_t switches = west.nib().switch_count();
  std::size_t links = west.nib().links().size();
  std::size_t routes = west.nib().external_route_count();
  auto gbs_view = west.nib().gbs_list();
  std::vector<GBsId> gbs_list(gbs_view.begin(), gbs_view.end());

  // Master "fails"; the standby takes over (§6: detects via heartbeat,
  // seizes the master role, redoes unfinished events).
  auto promoted = standby.promote();
  EXPECT_EQ(promoted->id(), west.id());
  EXPECT_EQ(promoted->nib().switch_count(), switches);
  EXPECT_EQ(promoted->nib().links().size(), links);
  EXPECT_EQ(promoted->nib().external_route_count(), routes);
  auto promoted_gbs = promoted->nib().gbs_list();
  EXPECT_EQ(std::vector<GBsId>(promoted_gbs.begin(), promoted_gbs.end()), gbs_list);

  // The standby is master now: it can program the data plane end to end.
  apps::MobilityApp mobility(promoted.get(), &net);
  UeId ue{9};
  ASSERT_TRUE(mobility.ue_attach(ue, bs_a).ok());
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = bs_a;
  request.dst_prefix = PrefixId{1};
  // The standby is not wired to a parent; it can only serve local routes —
  // east's egress is not local, so this should fail over to... the parent
  // is gone, so expect a clean failure rather than a crash.
  auto bearer = mobility.request_bearer(request);
  if (bearer.ok()) {
    auto report = send(ue);
    EXPECT_EQ(report.outcome, DeliveryReport::Outcome::kExternal);
  } else {
    // Promotion restored the interdomain routes, which include the east
    // egress learned pre-failure: routing can still exit there if the NIB
    // kept it. Either way the control plane answered coherently.
    EXPECT_FALSE(bearer.error().message.empty());
  }
  // Old master lost its role on the shared switches.
  EXPECT_EQ(net.sw(s1)->master().value_or(ControllerId{}), promoted->id());
}

}  // namespace
}  // namespace softmow
