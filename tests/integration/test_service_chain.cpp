// Service policies end to end (§2.1, §4.2): bearers whose PCRF policy
// demands a middlebox chain get paths that physically traverse the
// instances, utilization accounts for admission, and saturated instances
// steer later flows elsewhere.
#include <gtest/gtest.h>

#include "softmow/softmow.h"

namespace softmow {
namespace {

class ServiceChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1 = net.add_switch();
    s2 = net.add_switch();
    s3 = net.add_switch();
    (void)net.connect(s1, s2);
    (void)net.connect(s2, s3);
    group = net.add_bs_group(s1);
    bs = net.add_base_station(group, {});
    egress = net.add_egress(s3);
    fw_near = net.add_middlebox(s2, dataplane::MiddleboxType::kFirewall, 1000);
    fw_far = net.add_middlebox(s3, dataplane::MiddleboxType::kFirewall, 1000);

    mgmt::HierarchySpec spec;
    spec.leaves.push_back(mgmt::RegionSpec{"only", {s1, s2, s3}, {group}});
    mp = std::make_unique<mgmt::ManagementPlane>(&net);
    mp->bootstrap(spec);
    suite = std::make_unique<apps::AppSuite>(*mp);
    provider.egress_id = egress;
    suite->originate_interdomain(provider);
  }

  struct OneRoute : apps::ExternalPathProvider {
    EgressId egress_id;
    std::vector<PrefixId> prefixes() const override { return {PrefixId{1}}; }
    std::optional<apps::ExternalCost> cost(EgressId e, PrefixId) const override {
      if (!(e == egress_id)) return std::nullopt;
      return apps::ExternalCost{10, 20000};
    }
  } provider;

  apps::BearerRequest chained_request(UeId ue, double kbps = 0) {
    apps::BearerRequest request;
    request.ue = ue;
    request.bs = bs;
    request.dst_prefix = PrefixId{1};
    request.policy.chain = {dataplane::MiddleboxType::kFirewall};
    request.qos.min_bandwidth_kbps = kbps;
    return request;
  }

  dataplane::PhysicalNetwork net;
  SwitchId s1, s2, s3;
  BsGroupId group;
  BsId bs;
  EgressId egress;
  MiddleboxId fw_near, fw_far;
  std::unique_ptr<mgmt::ManagementPlane> mp;
  std::unique_ptr<apps::AppSuite> suite;
};

TEST_F(ServiceChainTest, PacketPhysicallyTraversesTheFirewall) {
  auto& mobility = suite->mobility(mp->leaf(0));
  ASSERT_TRUE(mobility.ue_attach(UeId{1}, bs).ok());
  auto bearer = mobility.request_bearer(chained_request(UeId{1}));
  ASSERT_TRUE(bearer.ok()) << bearer.error().message;

  Packet pkt;
  pkt.ue = UeId{1};
  pkt.dst_prefix = PrefixId{1};
  auto report = net.inject_uplink(pkt, bs);
  ASSERT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal);
  ASSERT_EQ(report.middleboxes_traversed.size(), 1u);
  MiddleboxId used = report.middleboxes_traversed[0];
  EXPECT_TRUE(used == fw_near || used == fw_far);
  EXPECT_EQ(net.middlebox(used)->packets_processed, 1u);
  EXPECT_LE(report.packet.max_depth_seen(), 1u);
}

TEST_F(ServiceChainTest, GuaranteedBearerRaisesChosenInstanceUtilization) {
  auto& mobility = suite->mobility(mp->leaf(0));
  auto& leaf = mp->leaf(0);
  ASSERT_TRUE(mobility.ue_attach(UeId{1}, bs).ok());
  auto bearer = mobility.request_bearer(chained_request(UeId{1}, /*kbps=*/400));
  ASSERT_TRUE(bearer.ok()) << bearer.error().message;

  double total_utilization = 0;
  for (MiddleboxId id : leaf.nib().middleboxes())
    total_utilization += leaf.nib().middlebox(id)->utilization;
  EXPECT_NEAR(total_utilization, 0.4, 1e-9);  // 400 of 1000 kbps on one instance

  ASSERT_TRUE(mobility.deactivate_bearer(UeId{1}, *bearer).ok());
  total_utilization = 0;
  for (MiddleboxId id : leaf.nib().middleboxes())
    total_utilization += leaf.nib().middlebox(id)->utilization;
  EXPECT_NEAR(total_utilization, 0.0, 1e-9);
}

TEST_F(ServiceChainTest, SaturatedInstanceSteersLaterFlows) {
  auto& leaf = mp->leaf(0);
  // Saturate the near firewall out of band.
  ASSERT_TRUE(leaf.nib().adjust_middlebox_utilization(fw_near, 0.97).ok());
  auto& mobility = suite->mobility(mp->leaf(0));
  ASSERT_TRUE(mobility.ue_attach(UeId{1}, bs).ok());
  ASSERT_TRUE(mobility.request_bearer(chained_request(UeId{1})).ok());

  Packet pkt;
  pkt.ue = UeId{1};
  pkt.dst_prefix = PrefixId{1};
  auto report = net.inject_uplink(pkt, bs);
  ASSERT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal);
  ASSERT_EQ(report.middleboxes_traversed.size(), 1u);
  EXPECT_EQ(report.middleboxes_traversed[0], fw_far);  // steered around fw_near
}

TEST_F(ServiceChainTest, AllInstancesSaturatedIsUnsatisfiable) {
  auto& leaf = mp->leaf(0);
  ASSERT_TRUE(leaf.nib().adjust_middlebox_utilization(fw_near, 0.97).ok());
  ASSERT_TRUE(leaf.nib().adjust_middlebox_utilization(fw_far, 0.97).ok());
  auto& mobility = suite->mobility(mp->leaf(0));
  ASSERT_TRUE(mobility.ue_attach(UeId{1}, bs).ok());
  auto bearer = mobility.request_bearer(chained_request(UeId{1}));
  ASSERT_FALSE(bearer.ok());  // no parent to climb to in this fixture
}

TEST_F(ServiceChainTest, PcrfDrivenChainViaFrontend) {
  apps::HssApp hss;
  apps::PcrfApp pcrf;
  hss.provision({UeId{9}, apps::SubscriberClass::kIot, "imsi-iot"});
  apps::SubscriberFrontend frontend(&hss, &pcrf, &suite->mobility(mp->leaf(0)));
  ASSERT_TRUE(frontend.attach(UeId{9}, bs).ok());
  // IoT default policy routes through a firewall (PcrfApp defaults).
  auto bearer = frontend.open_bearer(UeId{9}, PrefixId{1}, apps::ApplicationClass::kDefault);
  ASSERT_TRUE(bearer.ok()) << bearer.error().message;

  Packet pkt;
  pkt.ue = UeId{9};
  pkt.dst_prefix = PrefixId{1};
  auto report = net.inject_uplink(pkt, bs);
  ASSERT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal);
  EXPECT_EQ(report.middleboxes_traversed.size(), 1u);
}

}  // namespace
}  // namespace softmow
