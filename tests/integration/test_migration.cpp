// Live leaf migration (src/migrate) end to end: a bearer keeps delivering
// through every phase of a planned re-homing — snapshot, dual-control
// catch-up, flip, drain — with zero rule churn and a clean verifier; an
// abort mid-catch-up rolls back completely; every illegal transition returns
// a typed error; and the continuous re-homing loop moves hot leaves out and
// cold leaves back.
#include <gtest/gtest.h>

#include "softmow/softmow.h"

namespace softmow {
namespace {

using dataplane::DeliveryReport;

class MigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario = topo::build_scenario(topo::small_scenario_params());
    mp = scenario->mgmt.get();
    prefix = scenario->iplane->prefixes().front();
    for (const auto& region : scenario->partition.group_regions) {
      for (BsGroupId group : region) {
        if (mp->leaf_of_group(group) != &mp->leaf(0)) continue;
        const auto* bs_group = scenario->net.bs_group(group);
        if (bs_group == nullptr || bs_group->members.empty()) continue;
        bs = bs_group->members.front();
        ASSERT_TRUE(attach(ue));
        return;
      }
    }
    FAIL() << "no base station homed in leaf 0";
  }

  /// Attaches `u` at the probe BS and sets up a bearer to the external
  /// prefix — always through whatever instance currently *is* leaf 0.
  [[nodiscard]] bool attach(UeId u) {
    auto& mobility = scenario->apps->mobility(mp->leaf(0));
    if (!mobility.ue_attach(u, bs).ok()) return false;
    apps::BearerRequest request;
    request.ue = u;
    request.bs = bs;
    request.dst_prefix = prefix;
    return mobility.request_bearer(request).ok();
  }

  DeliveryReport send(UeId u) {
    Packet pkt;
    pkt.ue = u;
    pkt.dst_prefix = prefix;
    return scenario->net.inject_uplink(pkt, bs);
  }

  std::unique_ptr<topo::Scenario> scenario;
  mgmt::ManagementPlane* mp = nullptr;
  UeId ue{90101};
  BsId bs{};
  PrefixId prefix{};
};

TEST_F(MigrationTest, BearerServesThroughEveryPhaseOfPlannedMigration) {
  ASSERT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);

  migrate::MigrationManager mgr(*scenario);
  ASSERT_TRUE(mgr.begin(0, {"dc-east", sim::Duration::millis(6)}).ok());
  ASSERT_TRUE(mgr.stream_snapshot().ok());
  EXPECT_EQ(mgr.phase(), migrate::Phase::kCatchUp);
  // Dual-control window: the source still serves the data plane...
  EXPECT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);
  // ...and keeps accepting control-plane work — a bearer set up mid-window
  // is exactly the in-flight state the delta log must carry to the target.
  UeId ue_mid{90102};
  ASSERT_TRUE(attach(ue_mid));
  EXPECT_EQ(send(ue_mid).outcome, DeliveryReport::Outcome::kExternal);

  while (!mgr.ready_to_flip()) ASSERT_TRUE(mgr.catch_up().ok());
  EXPECT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);

  ASSERT_TRUE(mgr.flip().ok());
  EXPECT_EQ(mgr.phase(), migrate::Phase::kDrain);
  // Zero bearer loss: both flows deliver immediately after the flip, before
  // the source is even retired.
  EXPECT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);
  EXPECT_EQ(send(ue_mid).outcome, DeliveryReport::Outcome::kExternal);

  ASSERT_TRUE(mgr.drain().ok());
  EXPECT_EQ(mgr.phase(), migrate::Phase::kIdle);
  EXPECT_EQ(mgr.completed(), 1u);

  // The fresh instance answers the same ControllerId, holds master on every
  // device, and the placement bookkeeping moved.
  reca::Controller& fresh = mp->leaf(0);
  for (SwitchId sw : fresh.devices())
    EXPECT_EQ(scenario->net.sw(sw)->master().value_or(ControllerId{}), fresh.id());
  EXPECT_EQ(mp->leaf_placement(0).site, "dc-east");

  // Post-flip the control plane is fully operational: old bearers deliver, a
  // brand-new bearer sets up through the migrated leaf, and the static
  // verifier finds nothing.
  EXPECT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);
  EXPECT_EQ(send(ue_mid).outcome, DeliveryReport::Outcome::kExternal);
  UeId ue_after{90103};
  ASSERT_TRUE(attach(ue_after));
  EXPECT_EQ(send(ue_after).outcome, DeliveryReport::Outcome::kExternal);
  EXPECT_TRUE(mp->verify_data_plane().clean());

  const migrate::MigrationRecord& rec = mgr.records().back();
  EXPECT_EQ(rec.final_phase, migrate::Phase::kDone);
  EXPECT_GT(rec.devices, 0u);
  EXPECT_GT(rec.bytes_snapshot, 0u);
  EXPECT_GT(rec.disruption_ms, 0.0);
  // Disruption is only the flip window — strictly less than the whole cycle.
  EXPECT_LT(rec.disruption_ms, rec.total_ms());
}

TEST_F(MigrationTest, AbortMidCatchUpRollsBackCompletely) {
  migrate::MigrationManager mgr(*scenario);
  ASSERT_TRUE(mgr.begin(0, {"dc-west", sim::Duration::millis(9)}).ok());
  ASSERT_TRUE(mgr.stream_snapshot().ok());
  ASSERT_TRUE(mgr.catch_up().ok());  // first round parks standby sessions

  std::vector<SwitchId> devices = mp->leaf(0).devices();
  ASSERT_FALSE(devices.empty());
  for (SwitchId sw : devices)
    EXPECT_TRUE(mp->hub().agent(sw)->has_standby(mp->leaf(0).id())) << sw.value;

  ASSERT_TRUE(mgr.abort("drill").ok());
  EXPECT_EQ(mgr.phase(), migrate::Phase::kIdle);
  EXPECT_EQ(mgr.aborted(), 1u);
  EXPECT_EQ(mgr.records().back().final_phase, migrate::Phase::kAborted);

  // Rollback is total: parked sessions dropped, the source never lost its
  // role or its placement, and traffic still flows.
  for (SwitchId sw : devices) {
    EXPECT_FALSE(mp->hub().agent(sw)->has_standby(mp->leaf(0).id())) << sw.value;
    EXPECT_EQ(scenario->net.sw(sw)->master().value_or(ControllerId{}), mp->leaf(0).id());
  }
  EXPECT_EQ(mp->leaf_placement(0).site, "core");
  EXPECT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);
  EXPECT_TRUE(mp->verify_data_plane().clean());

  // The drill left nothing behind: a real migration succeeds afterwards.
  auto rec = mgr.migrate_leaf(0, {"dc-east", sim::Duration::millis(6)});
  ASSERT_TRUE(rec.ok()) << rec.error();
  EXPECT_EQ(rec->final_phase, migrate::Phase::kDone);
  EXPECT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);
}

TEST_F(MigrationTest, EveryIllegalTransitionReturnsTypedConflict) {
  migrate::MigrationManager mgr(*scenario);

  {
    auto r = mgr.begin(999, {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  }
  // No cycle in flight: every phase verb is a conflict, not a crash.
  EXPECT_EQ(mgr.stream_snapshot().code(), ErrorCode::kConflict);
  EXPECT_EQ(mgr.catch_up().code(), ErrorCode::kConflict);
  EXPECT_EQ(mgr.flip().code(), ErrorCode::kConflict);
  EXPECT_EQ(mgr.drain().code(), ErrorCode::kConflict);
  EXPECT_EQ(mgr.abort("x").code(), ErrorCode::kConflict);
  EXPECT_FALSE(mgr.ready_to_flip());

  ASSERT_TRUE(mgr.begin(0, {"dc", sim::Duration::millis(5)}).ok());
  EXPECT_EQ(mgr.begin(1, {}).code(), ErrorCode::kConflict);  // one at a time
  EXPECT_EQ(mgr.flip().code(), ErrorCode::kConflict);        // no snapshot yet

  ASSERT_TRUE(mgr.stream_snapshot().ok());
  EXPECT_EQ(mgr.stream_snapshot().code(), ErrorCode::kConflict);  // double stream
  EXPECT_EQ(mgr.flip().code(), ErrorCode::kConflict);  // target not caught up

  while (!mgr.ready_to_flip()) ASSERT_TRUE(mgr.catch_up().ok());
  EXPECT_EQ(mgr.catch_up().code(), ErrorCode::kConflict);  // window closed
  ASSERT_TRUE(mgr.flip().ok());
  // Past the point of no return: the flip happened, abort must refuse.
  EXPECT_EQ(mgr.abort("late").code(), ErrorCode::kConflict);
  ASSERT_TRUE(mgr.drain().ok());
  EXPECT_EQ(mgr.completed(), 1u);
}

TEST_F(MigrationTest, ContinuousRehomingMovesHotOutAndColdBack) {
  migrate::MigrationManager mgr(*scenario);
  migrate::ContinuousRehoming loop(*scenario, mgr, {});

  {
    auto r = loop.step({1.0}, sim::TimePoint::zero());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
  }

  const std::size_t n = mp->leaf_count();
  ASSERT_GE(n, 2u);
  // Window 1: leaf 1 runs far above the mean — it re-homes to its local site.
  std::vector<double> hot(n, 1.0);
  hot[1] = 10.0;
  auto moves = loop.step(hot, sim::TimePoint::zero() + sim::Duration::minutes(1));
  ASSERT_TRUE(moves.ok()) << moves.error();
  EXPECT_EQ(*moves, 1u);
  EXPECT_EQ(mp->leaf_placement(1).site, "site-" + mp->leaf(1).name());

  // Window 2: the surge passed — the now-cold leaf consolidates back to core
  // (everyone else stays inside the hot/cold band and does not move).
  std::vector<double> cool(n, 2.0);
  cool[1] = 0.5;
  auto back = loop.step(cool, sim::TimePoint::zero() + sim::Duration::minutes(2));
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(*back, 1u);
  EXPECT_EQ(mp->leaf_placement(1).site, "core");

  EXPECT_EQ(loop.steps(), 2u);
  EXPECT_EQ(loop.rehomings(), 2u);
  EXPECT_EQ(mgr.completed(), 2u);
  // Two live re-homings later the data plane never noticed.
  EXPECT_EQ(send(ue).outcome, DeliveryReport::Outcome::kExternal);
  EXPECT_TRUE(mp->verify_data_plane().clean());

  // A rehoming step while a manual cycle is in flight must refuse.
  ASSERT_TRUE(mgr.begin(0, {"dc", sim::Duration::millis(5)}).ok());
  EXPECT_EQ(loop.step(cool, sim::TimePoint::zero()).code(), ErrorCode::kConflict);
  ASSERT_TRUE(mgr.abort("cleanup").ok());
}

}  // namespace
}  // namespace softmow
