// Three-level hierarchy (leaves -> level-2 parents -> root, as in Figure 1):
// recursive discovery across all levels, delegation resolving at the lowest
// capable level, handovers mediated by the lowest common ancestor, and the
// single-label invariant across multi-level translated paths.
#include <gtest/gtest.h>

#include "softmow/softmow.h"

namespace softmow {
namespace {

class ThreeLevelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo::ScenarioParams params = topo::small_scenario_params(5);
    params.regions = 4;
    params.with_mid_level = true;  // {0,1} under parent-0, {2,3} under parent-1
    scenario_ = topo::build_scenario(std::move(params)).release();
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  topo::Scenario& scenario() { return *scenario_; }
  mgmt::ManagementPlane& mp() { return *scenario_->mgmt; }
  static topo::Scenario* scenario_;
};

topo::Scenario* ThreeLevelTest::scenario_ = nullptr;

TEST_F(ThreeLevelTest, HierarchyShape) {
  EXPECT_EQ(mp().root().level(), 3);
  ASSERT_EQ(mp().mids().size(), 2u);
  for (reca::Controller* mid : mp().mids()) {
    EXPECT_EQ(mid->level(), 2);
    EXPECT_EQ(mid->children().size(), 2u);
    EXPECT_EQ(mid->nib().switch_count(), 2u);  // two leaf G-switches
  }
  EXPECT_EQ(mp().root().nib().switch_count(), 2u);  // two mid G-switches
}

TEST_F(ThreeLevelTest, DiscoveryPartitionsLinksAcrossThreeLevels) {
  // Every physical link is discovered by exactly one controller: the lowest
  // one that sees both endpoints (DESIGN.md invariant 2).
  std::size_t total = 0;
  for (reca::Controller* c : mp().all_controllers()) total += c->nib().links().size();
  EXPECT_EQ(total, scenario().net.links().size());
  // The root only sees links between its two mid-level G-switches.
  for (const nos::LinkRecord& link : mp().root().nib().links()) {
    EXPECT_TRUE(reca::is_gswitch_id(link.a.sw));
    EXPECT_TRUE(reca::is_gswitch_id(link.b.sw));
  }
}

TEST_F(ThreeLevelTest, MidLevelAbstractionReexposesBorders) {
  for (reca::Controller* mid : mp().mids()) {
    mid->abstraction().refresh();
    const auto& features = mid->abstraction().features();
    EXPECT_TRUE(features.is_gswitch);
    EXPECT_GT(features.ports.size(), 0u);
    // The mid hides everything internal to its two leaves.
    std::size_t child_exposed = 0;
    for (reca::Controller* leaf : mid->children())
      child_exposed += leaf->abstraction().features().ports.size();
    EXPECT_LT(features.ports.size(), child_exposed);
  }
}

TEST_F(ThreeLevelTest, RootPathKeepsSingleLabelAcrossThreeLevels) {
  // Find a bearer that must be served above level 1 (prefix reachable, leaf
  // cannot see all egresses) and verify delivery + the §4.3 invariant.
  auto& mp_ref = mp();
  for (BsGroupId group : scenario().trace.groups) {
    reca::Controller* leaf = mp_ref.leaf_of_group(group);
    auto& mobility = scenario().apps->mobility(*leaf);
    BsId bs = scenario().net.bs_group(group)->members.front();
    UeId ue{4000 + group.value};
    if (!mobility.ue_attach(ue, bs).ok()) continue;
    apps::BearerRequest request;
    request.ue = ue;
    request.bs = bs;
    request.dst_prefix = PrefixId{group.value % 50};
    auto bearer = mobility.request_bearer(request);
    if (!bearer.ok()) continue;
    const apps::BearerRecord& rec = mobility.ue(ue)->bearers.at(*bearer);
    if (rec.handled_level < 2) continue;  // want a translated multi-level path

    Packet pkt;
    pkt.ue = ue;
    pkt.dst_prefix = request.dst_prefix;
    auto report = scenario().net.inject_uplink(pkt, bs);
    ASSERT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal);
    EXPECT_LE(report.packet.max_depth_seen(), 1u);
    SUCCEED();
    return;
  }
  GTEST_SKIP() << "no multi-level bearer in this seed";
}

TEST_F(ThreeLevelTest, HandoverMediatedByLowestCommonAncestor) {
  auto& mp_ref = mp();
  // A cross-leaf, same-mid adjacency edge: the mid is the common ancestor.
  BsGroupId src, dst;
  bool same_mid_found = false;
  for (const auto& [key, w] : scenario().trace.group_adjacency.edges()) {
    std::size_t la = mp_ref.leaf_index_of_group(key.first);
    std::size_t lb = mp_ref.leaf_index_of_group(key.second);
    if (la == lb) continue;
    if (mp_ref.mid_index_of_leaf(la) == mp_ref.mid_index_of_leaf(lb)) {
      src = key.first;
      dst = key.second;
      same_mid_found = true;
      break;
    }
  }
  if (!same_mid_found) GTEST_SKIP() << "no same-mid cross-leaf adjacency in this seed";

  std::size_t mid_index = mp_ref.mid_index_of_leaf(mp_ref.leaf_index_of_group(src));
  reca::Controller* mid = mp_ref.mids()[mid_index];
  auto& mid_mobility = scenario().apps->mobility(*mid);
  auto& root_mobility = scenario().apps->mobility(mp_ref.root());
  auto mid_before = mid_mobility.stats().inter_region_handled;
  auto root_before = root_mobility.stats().inter_region_handled;

  auto& mobility = scenario().apps->mobility(*mp_ref.leaf_of_group(src));
  UeId ue{7001};
  ASSERT_TRUE(mobility.ue_attach(ue, scenario().net.bs_group(src)->members.front()).ok());
  ASSERT_TRUE(mobility.handover(ue, scenario().net.bs_group(dst)->members.front()).ok());

  // §5.2: the request stops at the lowest common ancestor — the mid, not
  // the root.
  EXPECT_EQ(mid_mobility.stats().inter_region_handled, mid_before + 1);
  EXPECT_EQ(root_mobility.stats().inter_region_handled, root_before);
}

TEST_F(ThreeLevelTest, CrossMidHandoverClimbsToRoot) {
  auto& mp_ref = mp();
  BsGroupId src, dst;
  bool cross_mid_found = false;
  for (const auto& [key, w] : scenario().trace.group_adjacency.edges()) {
    std::size_t la = mp_ref.leaf_index_of_group(key.first);
    std::size_t lb = mp_ref.leaf_index_of_group(key.second);
    if (la == lb) continue;
    if (mp_ref.mid_index_of_leaf(la) != mp_ref.mid_index_of_leaf(lb)) {
      src = key.first;
      dst = key.second;
      cross_mid_found = true;
      break;
    }
  }
  if (!cross_mid_found) GTEST_SKIP() << "no cross-mid adjacency in this seed";

  auto& root_mobility = scenario().apps->mobility(mp_ref.root());
  auto root_before = root_mobility.stats().inter_region_handled;
  auto& mobility = scenario().apps->mobility(*mp_ref.leaf_of_group(src));
  UeId ue{7002};
  ASSERT_TRUE(mobility.ue_attach(ue, scenario().net.bs_group(src)->members.front()).ok());
  ASSERT_TRUE(mobility.handover(ue, scenario().net.bs_group(dst)->members.front()).ok());
  EXPECT_EQ(root_mobility.stats().inter_region_handled, root_before + 1);
  // The UE now lives at the destination leaf.
  EXPECT_NE(scenario().apps->mobility(*mp_ref.leaf_of_group(dst)).ue(ue), nullptr);
}

TEST_F(ThreeLevelTest, HandoverGraphCollectionRecursesThroughMids) {
  // Drive a couple of handovers so the leaf logs are non-empty (each gtest
  // case runs in its own process; no state from sibling tests).
  auto& mp_ref = mp();
  int driven = 0;
  std::uint64_t seq = 0;
  for (const auto& [key, w] : scenario().trace.group_adjacency.edges()) {
    if (driven >= 3) break;
    auto& mobility = scenario().apps->mobility(*mp_ref.leaf_of_group(key.first));
    UeId ue{8000 + seq++};
    if (!mobility.ue_attach(ue, scenario().net.bs_group(key.first)->members.front()).ok())
      continue;
    if (mobility.handover(ue, scenario().net.bs_group(key.second)->members.front()).ok())
      ++driven;
  }
  ASSERT_GT(driven, 0);

  auto& root_mobility = scenario().apps->mobility(mp().root());
  auto graph = root_mobility.collect_handover_graph();
  EXPECT_GT(graph.total_weight(), 0.0);
  // Every node is something the root can see: one of its NIB G-BSes.
  for (GBsId node : graph.nodes()) {
    EXPECT_NE(mp().root().nib().gbs(node), nullptr) << node.str();
  }
}

}  // namespace
}  // namespace softmow
