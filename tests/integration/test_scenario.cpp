// Integration tests over a complete (small) generated scenario: hierarchy
// bootstrap, interdomain propagation, bearers through the mobility app,
// intra- and inter-region handovers, and an executed region-optimization
// round with its reconfiguration protocol.
#include <gtest/gtest.h>

#include "softmow/softmow.h"

namespace softmow {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = topo::build_scenario(topo::small_scenario_params(3)).release();
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  topo::Scenario& scenario() { return *scenario_; }
  static topo::Scenario* scenario_;
};

topo::Scenario* ScenarioTest::scenario_ = nullptr;

TEST_F(ScenarioTest, HierarchyBootstrapped) {
  auto& mp = *scenario().mgmt;
  EXPECT_EQ(mp.leaf_count(), 4u);
  EXPECT_EQ(mp.root().nib().switch_count(), 4u);  // 4 leaf G-switches
  EXPECT_FALSE(mp.root().nib().links().empty());  // cross-region links found
  for (reca::Controller* leaf : mp.leaves()) {
    EXPECT_GT(leaf->nib().switch_count(), 0u) << leaf->name();
    EXPECT_TRUE(leaf->discovery().features_complete()) << leaf->name();
  }
}

TEST_F(ScenarioTest, DiscoveryIsSoundAndComplete) {
  // Invariant 2 (DESIGN.md): the union of links discovered across all
  // controllers equals the physical link set, each discovered exactly once.
  auto& mp = *scenario().mgmt;
  std::size_t discovered = 0;
  for (reca::Controller* c : mp.all_controllers()) {
    if (c->is_leaf()) {
      discovered += c->nib().links().size();
    } else {
      discovered += c->nib().links().size();  // inter-G-switch links are physical too
    }
  }
  EXPECT_EQ(discovered, scenario().net.links().size());
}

TEST_F(ScenarioTest, InterdomainRoutesReachRoot) {
  auto& root = scenario().mgmt->root();
  EXPECT_GT(root.nib().external_route_count(), 0u);
  // The root sees routes from several egress points for a typical prefix.
  auto routes = root.nib().external_routes(PrefixId{0});
  EXPECT_GE(routes.size(), 2u);
}

TEST_F(ScenarioTest, ExposureHidesMostPorts) {
  // Table 1's qualitative claim: each leaf exposes a small fraction of what
  // it discovered.
  for (reca::Controller* leaf : scenario().mgmt->leaves()) {
    leaf->abstraction().refresh();
    auto stats = leaf->abstraction().stats();
    ASSERT_GT(stats.total_ports, 0u);
    double exposed_fraction =
        static_cast<double>(stats.exposed_ports) / static_cast<double>(stats.total_ports);
    EXPECT_LT(exposed_fraction, 0.6) << leaf->name();
  }
}

TEST_F(ScenarioTest, LocalBearerEndToEnd) {
  auto& mp = *scenario().mgmt;
  // Pick a group in leaf 0 and a UE on its first base station.
  BsGroupId group = scenario().partition.group_regions[0].front();
  BsId bs = scenario().net.bs_group(group)->members.front();
  auto& mobility = scenario().apps->mobility(*mp.leaf_of_group(group));

  UeId ue{1001};
  ASSERT_TRUE(mobility.ue_attach(ue, bs).ok());
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = bs;
  request.dst_prefix = PrefixId{5};
  auto bearer = mobility.request_bearer(request);
  ASSERT_TRUE(bearer.ok()) << bearer.error().message;

  Packet pkt;
  pkt.ue = ue;
  pkt.dst_prefix = PrefixId{5};
  auto report = scenario().net.inject_uplink(pkt, bs);
  EXPECT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal);
  EXPECT_LE(report.packet.max_depth_seen(), 1u);
  ASSERT_TRUE(mobility.deactivate_bearer(ue, *bearer).ok());
}

TEST_F(ScenarioTest, QosBearerDelegatesToAncestorAndStillDelivers) {
  auto& mp = *scenario().mgmt;
  BsGroupId group = scenario().partition.group_regions[1].front();
  BsId bs = scenario().net.bs_group(group)->members.front();
  auto& mobility = scenario().apps->mobility(*mp.leaf_of_group(group));

  UeId ue{2002};
  ASSERT_TRUE(mobility.ue_attach(ue, bs).ok());
  // A latency bound usually only satisfiable through another region's
  // egress: force delegation by requiring the globally best path.
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = bs;
  request.dst_prefix = PrefixId{7};
  request.objective = Metric::kLatency;

  // First measure what the root could achieve. Internal groups appear at
  // the root as the leaf's aggregate G-BS.
  auto& leaf = *mp.leaf_of_group(group);
  leaf.abstraction().refresh();
  GBsId root_gbs = leaf.abstraction().exposed_gbs_id(mgmt::gbs_id_for_group(group));
  const auto* gbs = mp.root().nib().gbs(root_gbs);
  ASSERT_NE(gbs, nullptr);
  nos::RoutingRequest probe;
  probe.source = Endpoint{gbs->attached_switch, gbs->attached_port};
  probe.dst_prefix = request.dst_prefix;
  probe.objective = Metric::kLatency;
  auto best = mp.root().compute_route(probe);
  ASSERT_TRUE(best.ok());
  request.qos.max_latency_us = best->total_latency_us() * 1.02;

  auto bearer = mobility.request_bearer(request);
  ASSERT_TRUE(bearer.ok()) << bearer.error().message;

  Packet pkt;
  pkt.ue = ue;
  pkt.dst_prefix = request.dst_prefix;
  auto report = scenario().net.inject_uplink(pkt, bs);
  EXPECT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal);
  EXPECT_LE(report.packet.max_depth_seen(), 1u);
}

TEST_F(ScenarioTest, IntraRegionHandoverKeepsConnectivity) {
  auto& mp = *scenario().mgmt;
  // Two groups in the same region (pick any region with at least two).
  std::vector<BsGroupId> groups;
  for (const auto& region : scenario().partition.group_regions) {
    if (region.size() >= 2) {
      groups = region;
      break;
    }
  }
  ASSERT_GE(groups.size(), 2u);
  BsId src_bs = scenario().net.bs_group(groups[0])->members.front();
  BsId dst_bs = scenario().net.bs_group(groups[1])->members.front();
  auto& mobility = scenario().apps->mobility(*mp.leaf_of_group(groups[0]));

  UeId ue{3003};
  ASSERT_TRUE(mobility.ue_attach(ue, src_bs).ok());
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = src_bs;
  request.dst_prefix = PrefixId{9};
  ASSERT_TRUE(mobility.request_bearer(request).ok());

  auto before = mobility.stats().intra_region_handovers;
  ASSERT_TRUE(mobility.handover(ue, dst_bs).ok());
  EXPECT_EQ(mobility.stats().intra_region_handovers, before + 1);

  Packet pkt;
  pkt.ue = ue;
  pkt.dst_prefix = PrefixId{9};
  auto report = scenario().net.inject_uplink(pkt, dst_bs);
  EXPECT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal);
}

TEST_F(ScenarioTest, InterRegionHandoverMovesUeAndReroutes) {
  auto& mp = *scenario().mgmt;
  // Handover targets must be radio-adjacent (§5.2: the UE hears the target
  // G-BS's broadcast): pick a cross-region edge of the handover adjacency,
  // whose endpoints are border G-BSes exposed to the common ancestor.
  BsGroupId src_group, dst_group;
  for (const auto& [key, weight] : scenario().trace.group_adjacency.edges()) {
    if (mp.leaf_index_of_group(key.first) != mp.leaf_index_of_group(key.second)) {
      src_group = key.first;
      dst_group = key.second;
      break;
    }
  }
  ASSERT_TRUE(src_group.valid());
  BsId src_bs = scenario().net.bs_group(src_group)->members.front();
  BsId dst_bs = scenario().net.bs_group(dst_group)->members.front();
  auto& src_mobility = scenario().apps->mobility(*mp.leaf_of_group(src_group));
  auto& dst_mobility = scenario().apps->mobility(*mp.leaf_of_group(dst_group));

  UeId ue{4004};
  ASSERT_TRUE(src_mobility.ue_attach(ue, src_bs).ok());
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = src_bs;
  request.dst_prefix = PrefixId{11};
  ASSERT_TRUE(src_mobility.request_bearer(request).ok());

  auto root_before = scenario().apps->mobility(mp.root()).stats().inter_region_handled;
  ASSERT_TRUE(src_mobility.handover(ue, dst_bs).ok());

  // The UE now lives at the target leaf; the root mediated the handover.
  EXPECT_EQ(src_mobility.ue(ue), nullptr);
  ASSERT_NE(dst_mobility.ue(ue), nullptr);
  EXPECT_EQ(dst_mobility.ue(ue)->bs, dst_bs);
  EXPECT_EQ(scenario().apps->mobility(mp.root()).stats().inter_region_handled,
            root_before + 1);

  // Traffic from the new base station still reaches the Internet.
  Packet pkt;
  pkt.ue = ue;
  pkt.dst_prefix = PrefixId{11};
  auto report = scenario().net.inject_uplink(pkt, dst_bs);
  EXPECT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal);
  EXPECT_LE(report.packet.max_depth_seen(), 1u);
}

TEST_F(ScenarioTest, RegionOptimizationReducesCrossRegionHandovers) {
  auto& mp = *scenario().mgmt;
  auto* opt = scenario().apps->region_opt(mp.root());
  ASSERT_NE(opt, nullptr);

  // Drive handovers from the trace so the mobility apps build a handover
  // graph with real cross-region weight.
  auto& trace = scenario().trace;
  int driven = 0;
  for (const auto& [key, weight] : trace.group_adjacency.edges()) {
    auto [a, b] = key;
    if (mp.leaf_index_of_group(a) == mp.leaf_index_of_group(b)) continue;
    // Log weighted edges directly into the source leaf's mobility app via
    // real handover calls for a few UEs.
    BsId src_bs = scenario().net.bs_group(a)->members.front();
    BsId dst_bs = scenario().net.bs_group(b)->members.front();
    auto& mobility = scenario().apps->mobility(*mp.leaf_of_group(a));
    UeId ue{90000u + static_cast<std::uint64_t>(driven)};
    if (!mobility.ue_attach(ue, src_bs).ok()) continue;
    if (mobility.handover(ue, dst_bs).ok()) ++driven;
    if (driven >= 12) break;
  }
  ASSERT_GT(driven, 0);

  apps::RegionOptConstraints constraints;
  constraints.lb_factor = 0.0;  // uncapacitated for this small scenario
  constraints.ub_factor = 10.0;
  auto result = opt->optimize_round(constraints, {}, /*execute=*/true);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_LE(result->final_cross_weight, result->initial_cross_weight);
  if (!result->moves.empty()) {
    EXPECT_LT(result->final_cross_weight, result->initial_cross_weight);
    // Every move had strictly positive gain (§5.3.1 termination criterion).
    for (const auto& move : result->moves) EXPECT_GT(move.gain, 0.0);
  }

  // After reconfiguration the control plane is still coherent: rerun
  // discovery and set up a fresh path across regions.
  BsGroupId group = scenario().partition.group_regions[3].front();
  BsId bs = scenario().net.bs_group(group)->members.front();
  auto& mobility = scenario().apps->mobility(*mp.leaf_of_group(group));
  UeId ue{5005};
  ASSERT_TRUE(mobility.ue_attach(ue, bs).ok());
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = bs;
  request.dst_prefix = PrefixId{13};
  auto bearer = mobility.request_bearer(request);
  ASSERT_TRUE(bearer.ok()) << bearer.error().message;
}

}  // namespace
}  // namespace softmow
