// End-to-end tenant isolation: the slice-annotated static verifier and the
// rule/probe audit both stay clean over a multi-tenant scenario, both pin a
// seeded cross-tenant classifier to its exact (switch, cookie, slice)
// triple, and the self-healing plane removes it again.
#include <gtest/gtest.h>

#include <memory>

#include "mgmt/audit.h"
#include "softmow/softmow.h"

namespace softmow {
namespace {

class SliceIsolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario = topo::build_scenario(topo::small_scenario_params(11));
    mgr = std::make_unique<slice::SliceManager>(*scenario,
                                                slice::SliceManager::Options{});
    for (const char* name : {"a", "b"}) {
      slice::SliceSpec spec;
      spec.name = name;
      SliceId id = *mgr->add_slice(spec);
      ASSERT_TRUE(mgr->provision(id, 2).ok());
      for (UeId ue : mgr->subscribers(id)) {
        ASSERT_TRUE(mgr->open_bearer(id, ue, PrefixId{17}).ok());
      }
    }
    mgr->install_annotator();
  }

  std::unique_ptr<topo::Scenario> scenario;
  std::unique_ptr<slice::SliceManager> mgr;
};

TEST_F(SliceIsolationTest, MultiTenantScenarioVerifiesClean) {
  verify::VerifyReport report = scenario->mgmt->verify_data_plane();
  EXPECT_EQ(report.isolation_violations(), 0u) << report.summary();
  EXPECT_TRUE(report.clean()) << report.summary();

  mgmt::SliceAuditReport audit =
      mgmt::audit_slice_isolation(scenario->net, mgr->ue_slices());
  EXPECT_TRUE(audit.clean());
  EXPECT_GT(audit.probes_sent, 0u);
  EXPECT_GT(audit.tagged_hops_checked, 0u);
}

TEST_F(SliceIsolationTest, RogueRuleIsPinnedByVerifierAndAudit) {
  faults::FaultScenario plan = faults::make_fault_plan("rogue-rule", *scenario, 1);
  ASSERT_EQ(plan.events.size(), 1u);
  const faults::FaultEvent& ev = plan.events.front();
  ASSERT_EQ(ev.kind, faults::FaultKind::kRogueRule);

  dataplane::Switch* sw = scenario->net.sw(ev.sw);
  ASSERT_NE(sw, nullptr);
  ASSERT_TRUE(sw->table().install(ev.rogue).ok());

  // Static verifier: at least one isolation finding names the exact
  // (switch, cookie, slice) triple of the forged classifier.
  verify::VerifyReport report = scenario->mgmt->verify_data_plane();
  EXPECT_GT(report.isolation_violations(), 0u) << report.summary();
  std::optional<SliceId> forged_slice;
  for (const dataplane::Action& a : ev.rogue.actions) {
    if (auto tag = dataplane::decode_tag(a.label.value)) forged_slice = tag->slice;
  }
  ASSERT_TRUE(forged_slice.has_value());
  bool verifier_pinned = false;
  for (const verify::Finding& f : report.findings) {
    if (f.invariant != verify::Invariant::kCrossSlice &&
        f.invariant != verify::Invariant::kTagMismatch)
      continue;
    if (f.sw == ev.sw && f.cookie == ev.rogue.cookie && f.slice == *forged_slice)
      verifier_pinned = true;
  }
  EXPECT_TRUE(verifier_pinned)
      << "no isolation finding named (" << ev.sw.str() << ", " << ev.rogue.cookie
      << ", " << forged_slice->str() << ")";

  // Probe audit: same triple, independently.
  mgmt::SliceAuditReport audit =
      mgmt::audit_slice_isolation(scenario->net, mgr->ue_slices());
  EXPECT_FALSE(audit.clean());
  bool audit_pinned = false;
  for (const mgmt::SliceAuditFinding& f : audit.findings) {
    if (f.sw == ev.sw && f.cookie == ev.rogue.cookie && f.found == *forged_slice)
      audit_pinned = true;
  }
  EXPECT_TRUE(audit_pinned);

  // Removing the rogue rule restores both detectors to clean.
  ASSERT_TRUE(sw->table().remove_by_cookie(ev.rogue.cookie).ok());
  EXPECT_EQ(scenario->mgmt->verify_data_plane().isolation_violations(), 0u);
  EXPECT_TRUE(mgmt::audit_slice_isolation(scenario->net, mgr->ue_slices()).clean());
}

TEST_F(SliceIsolationTest, SelfHealingRemovesRogueRule) {
  faults::FaultScenario plan = faults::make_fault_plan("rogue-rule", *scenario, 1);
  ASSERT_EQ(plan.events.size(), 1u);
  const faults::FaultEvent& ev = plan.events.front();

  faults::RecoveryCoordinator coord(*scenario);
  coord.harden();
  faults::FaultInjector injector(*scenario);
  std::vector<faults::FaultRecord> records = injector.run(plan, coord);

  ASSERT_EQ(records.size(), 1u);
  EXPECT_GE(records[0].repaired, 1u);
  EXPECT_GT(records[0].mttr_ms, 0.0);

  // The forged cookie is gone and the tenancy invariants hold again.
  const dataplane::Switch* sw = scenario->net.sw(ev.sw);
  ASSERT_NE(sw, nullptr);
  for (const dataplane::FlowRule& rule : sw->table().rules())
    EXPECT_NE(rule.cookie, ev.rogue.cookie);
  EXPECT_EQ(scenario->mgmt->verify_data_plane().isolation_violations(), 0u);
  EXPECT_TRUE(mgmt::audit_slice_isolation(scenario->net, mgr->ue_slices()).clean());
}

TEST_F(SliceIsolationTest, FailoverRewiresTagAllocator) {
  // A promoted standby starts without the shared tag allocator;
  // rewire_encapsulation restores tag stamping for post-failover bearers.
  mgmt::HotStandby standby(scenario->mgmt->leaf(0), scenario->mgmt->hub());
  standby.sync();
  reca::Controller& promoted = scenario->mgmt->fail_over_leaf(0, standby);
  EXPECT_EQ(promoted.tag_allocator(), nullptr);
  mgr->rewire_encapsulation();
  EXPECT_EQ(promoted.tag_allocator(), mgr->tag_allocator());
}

}  // namespace
}  // namespace softmow
