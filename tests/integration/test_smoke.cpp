// End-to-end smoke test over the Figure 5 topology: two leaf regions under a
// root, a bearer path set up by the root, translated by both leaves through
// recursive label swapping, and a packet walked through the physical data
// plane under the single-label invariant.
#include <gtest/gtest.h>

#include "dataplane/network.h"
#include "mgmt/management.h"
#include "nos/port_graph.h"
#include "reca/controller.h"

namespace softmow {
namespace {

using dataplane::PhysicalNetwork;
using mgmt::HierarchySpec;
using mgmt::ManagementPlane;
using mgmt::RegionSpec;

class Fig5Test : public ::testing::Test {
 protected:
  void SetUp() override {
    s1 = net.add_switch({0, 0});
    s2 = net.add_switch({1, 0});
    s3 = net.add_switch({2, 0});
    s4 = net.add_switch({3, 0});
    (void)net.connect(s1, s2);
    (void)net.connect(s2, s3);  // the cross-region link
    (void)net.connect(s3, s4);
    group_a = net.add_bs_group(s1, dataplane::BsGroupTopology::kRing, {0, 1});
    group_b = net.add_bs_group(s4, dataplane::BsGroupTopology::kRing, {3, 1});
    bs_a = net.add_base_station(group_a, {0, 1});
    net.add_base_station(group_b, {3, 1});
    egress = net.add_egress(s4, {3, -1}, "isp-east");

    HierarchySpec spec;
    spec.leaves.push_back(RegionSpec{"leaf-1", {s1, s2}, {group_a}});
    spec.leaves.push_back(RegionSpec{"leaf-2", {s3, s4}, {group_b}});
    spec.group_adjacency.add(group_a, group_b, 10.0);

    mp = std::make_unique<ManagementPlane>(&net);
    mp->bootstrap(spec);
  }

  PhysicalNetwork net;
  SwitchId s1, s2, s3, s4;
  BsGroupId group_a, group_b;
  BsId bs_a;
  EgressId egress;
  std::unique_ptr<ManagementPlane> mp;
};

TEST_F(Fig5Test, LeafDiscoveryFindsLocalTopology) {
  auto& leaf1 = mp->leaf(0);
  // s1, s2 plus group A's access switch.
  EXPECT_EQ(leaf1.nib().switch_count(), 3u);
  // s1-s2 and access-s1; the s2-s3 link is invisible to the leaf.
  EXPECT_EQ(leaf1.nib().links().size(), 2u);

  auto& leaf2 = mp->leaf(1);
  EXPECT_EQ(leaf2.nib().switch_count(), 3u);
  EXPECT_EQ(leaf2.nib().links().size(), 2u);
}

TEST_F(Fig5Test, RootDiscoversExactlyTheCrossRegionLink) {
  auto& root = mp->root();
  EXPECT_EQ(root.nib().switch_count(), 2u);  // two G-switches
  ASSERT_EQ(root.nib().links().size(), 1u);
  // Both endpoints are G-switches.
  const nos::LinkRecord& link = root.nib().links().front();
  EXPECT_TRUE(reca::is_gswitch_id(link.a.sw));
  EXPECT_TRUE(reca::is_gswitch_id(link.b.sw));
}

TEST_F(Fig5Test, AbstractionExposesBorderAndRadioAndEgressPorts) {
  auto& leaf2 = mp->leaf(1);
  const auto& features = leaf2.abstraction().features();
  int external = 0, radio = 0, cross = 0;
  for (const auto& p : features.ports) {
    if (p.peer == dataplane::PeerKind::kExternal) ++external;
    if (p.peer == dataplane::PeerKind::kBsGroup) ++radio;
    if (p.peer == dataplane::PeerKind::kSwitch) ++cross;
  }
  EXPECT_EQ(external, 1);
  EXPECT_EQ(radio, 1);   // group B is border (adjacent to A in leaf-1)
  EXPECT_EQ(cross, 1);   // s3's port toward s2
  EXPECT_FALSE(features.vfabric.empty());
}

TEST_F(Fig5Test, RootSetsUpCrossRegionPathWithSingleLabelInvariant) {
  auto& root = mp->root();

  // Publish an interdomain route for prefix 99 at leaf-2's egress, in the
  // root's (logical) ID space.
  PrefixId prefix{99};
  auto& leaf2 = mp->leaf(1);
  Endpoint egress_local{s4, net.egress(egress)->attach.port};
  auto exposed = leaf2.abstraction().to_exposed(egress_local);
  ASSERT_TRUE(exposed.has_value());
  SwitchId gs2 = leaf2.abstraction().gswitch_id();
  root.nib().upsert_external_route(
      nos::ExternalRoute{Endpoint{gs2, *exposed}, prefix, 10.0, 30000.0});

  // Source: group A's G-BS attachment port on GS1.
  const southbound::GBsAnnounce* gbs_a = root.nib().gbs(mgmt::gbs_id_for_group(group_a));
  ASSERT_NE(gbs_a, nullptr);

  nos::RoutingRequest req;
  req.source = Endpoint{gbs_a->attached_switch, gbs_a->attached_port};
  req.dst_prefix = prefix;
  auto route = root.compute_route(req);
  ASSERT_TRUE(route.ok()) << route.error().message;
  EXPECT_TRUE(route->internet_bound());
  EXPECT_EQ(route->hops.size(), 2u);  // GS1 then GS2

  dataplane::Match classifier;
  classifier.ue = UeId{7};
  auto path = root.path_setup(*route, classifier);
  ASSERT_TRUE(path.ok()) << path.error().message;

  // Inject an uplink packet from a UE in group A.
  Packet pkt;
  pkt.ue = UeId{7};
  pkt.dst_prefix = prefix;
  auto report = net.inject_uplink(pkt, bs_a);
  ASSERT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kExternal)
      << "hops=" << report.hops;
  EXPECT_EQ(report.egress, egress);
  EXPECT_TRUE(report.packet.labels.empty());  // popped before leaving

  // §4.3 single-label invariant: at most one label at every switch entry.
  for (const auto& hop : report.packet.trace) {
    EXPECT_LE(hop.label_depth_on_entry, 1u) << "at " << hop.sw.str();
  }
  EXPECT_EQ(report.packet.max_depth_seen(), 1u);
}

TEST_F(Fig5Test, PathTeardownRemovesAllRules) {
  auto& root = mp->root();
  PrefixId prefix{99};
  auto& leaf2 = mp->leaf(1);
  Endpoint egress_local{s4, net.egress(egress)->attach.port};
  SwitchId gs2 = leaf2.abstraction().gswitch_id();
  root.nib().upsert_external_route(nos::ExternalRoute{
      Endpoint{gs2, *leaf2.abstraction().to_exposed(egress_local)}, prefix, 10.0, 30000.0});
  const auto* gbs_a = root.nib().gbs(mgmt::gbs_id_for_group(group_a));
  nos::RoutingRequest req;
  req.source = Endpoint{gbs_a->attached_switch, gbs_a->attached_port};
  req.dst_prefix = prefix;
  auto route = root.compute_route(req);
  ASSERT_TRUE(route.ok());
  dataplane::Match classifier;
  classifier.ue = UeId{7};
  auto path = root.path_setup(*route, classifier);
  ASSERT_TRUE(path.ok());
  std::size_t rules_with_path = net.total_rules();
  EXPECT_GT(rules_with_path, 0u);

  ASSERT_TRUE(root.deactivate_path(*path).ok());
  EXPECT_EQ(net.total_rules(), 0u);

  // A packet now dies at the access switch with a table miss.
  Packet pkt;
  pkt.ue = UeId{7};
  pkt.dst_prefix = prefix;
  auto report = net.inject_uplink(pkt, bs_a);
  EXPECT_EQ(report.outcome, dataplane::DeliveryReport::Outcome::kToController);
}

}  // namespace
}  // namespace softmow
