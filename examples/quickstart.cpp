// Quickstart: build a small SoftMoW deployment (4 leaf regions under a
// root), attach a subscriber, set up a bearer through the operator
// applications, and push a packet through the physical data plane.
//
//   $ ./quickstart
#include <cstdio>

#include "softmow/softmow.h"

using namespace softmow;

int main() {
  // 1. A complete scenario: synthetic WAN (40 switches), radio network
  //    (~120 base stations grouped by the §7.1 inference), 4 balanced leaf
  //    regions bootstrapped under a root controller, interdomain routes
  //    originated at every egress point.
  auto scenario = topo::build_scenario(topo::small_scenario_params(/*seed=*/42));
  auto& mp = *scenario->mgmt;

  std::printf("hierarchy: %zu leaf controllers under '%s' (level %d)\n", mp.leaf_count(),
              mp.root().name().c_str(), mp.root().level());
  for (reca::Controller* leaf : mp.leaves()) {
    auto stats = leaf->abstraction().stats();
    std::printf("  %-8s: %3zu switches, %3zu links discovered, exposes %2zu ports to root\n",
                leaf->name().c_str(), stats.switches, stats.links, stats.exposed_ports);
  }
  std::printf("root sees %zu G-switches, %zu inter-region links, %zu interdomain routes\n\n",
              mp.root().nib().switch_count(), mp.root().nib().links().size(),
              mp.root().nib().external_route_count());

  // 2. Attach a UE at some base station and request a bearer to an
  //    Internet prefix. The leaf serves it locally when it can; otherwise
  //    the request is delegated up the hierarchy (§5.1).
  BsGroupId group = scenario->partition.group_regions[0].front();
  BsId bs = scenario->net.bs_group(group)->members.front();
  apps::MobilityApp& mobility = scenario->apps->mobility(*mp.leaf_of_group(group));

  UeId ue{1};
  if (auto attached = mobility.ue_attach(ue, bs); !attached.ok()) {
    std::printf("UE attach failed: %s\n", attached.error().message.c_str());
    return 1;
  }
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = bs;
  request.dst_prefix = PrefixId{17};
  auto bearer = mobility.request_bearer(request);
  if (!bearer.ok()) {
    std::printf("bearer setup failed: %s\n", bearer.error().message.c_str());
    return 1;
  }
  const apps::UeRecord* record = mobility.ue(ue);
  const apps::BearerRecord& b = record->bearers.at(*bearer);
  std::printf("bearer %s for %s -> prefix %llu: handled at level %d (%s)\n",
              bearer->str().c_str(), ue.str().c_str(),
              (unsigned long long)request.dst_prefix.value, b.handled_level,
              b.handled_locally ? "leaf-local path" : "delegated to an ancestor");

  // 3. Push an uplink packet through the data plane and watch it leave at
  //    an egress point, carrying at most one label on any link (§4.3).
  Packet pkt;
  pkt.ue = ue;
  pkt.dst_prefix = request.dst_prefix;
  auto report = scenario->net.inject_uplink(pkt, bs);
  if (report.outcome != dataplane::DeliveryReport::Outcome::kExternal) {
    std::printf("packet did not reach an egress point\n");
    return 1;
  }
  std::printf("packet delivered via egress '%s': %.0f switch hops, %.1f ms one-way, "
              "max label depth %zu\n",
              scenario->net.egress(report.egress)->peer_name.c_str(), report.hops,
              report.latency.to_millis(), report.packet.max_depth_seen());

  // 4. Tear down.
  (void)mobility.deactivate_bearer(ue, *bearer);
  (void)mobility.ue_detach(ue);
  std::printf("teardown complete; %zu rules left in the data plane\n",
              scenario->net.total_rules());
  return 0;
}
