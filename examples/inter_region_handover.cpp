// Walkthrough of an inter-region handover (§5.2): a UE with an active
// bearer moves from a base station in one leaf region to a radio-adjacent
// base station controlled by a different leaf. The common ancestor (the
// root) allocates resources at the target G-BS, implements a transfer path
// for in-flight packets, sets up new bearer paths, and releases the source.
//
//   $ ./inter_region_handover
#include <cstdio>

#include "softmow/softmow.h"

using namespace softmow;

int main() {
  auto scenario = topo::build_scenario(topo::small_scenario_params(/*seed=*/11));
  auto& mp = *scenario->mgmt;

  // Find a radio-adjacent pair of BS groups controlled by different leaves:
  // the only physically meaningful inter-region handover targets.
  BsGroupId src_group, dst_group;
  for (const auto& [key, weight] : scenario->trace.group_adjacency.edges()) {
    if (mp.leaf_index_of_group(key.first) != mp.leaf_index_of_group(key.second)) {
      src_group = key.first;
      dst_group = key.second;
      break;
    }
  }
  if (!src_group.valid()) {
    std::printf("no cross-region adjacency in this scenario seed\n");
    return 1;
  }
  reca::Controller& src_leaf = *mp.leaf_of_group(src_group);
  reca::Controller& dst_leaf = *mp.leaf_of_group(dst_group);
  BsId src_bs = scenario->net.bs_group(src_group)->members.front();
  BsId dst_bs = scenario->net.bs_group(dst_group)->members.front();
  std::printf("UE journey: %s (%s, region of %s) -> %s (%s, region of %s)\n",
              src_bs.str().c_str(), src_group.str().c_str(), src_leaf.name().c_str(),
              dst_bs.str().c_str(), dst_group.str().c_str(), dst_leaf.name().c_str());

  // Attach + bearer at the source leaf.
  apps::MobilityApp& src_mobility = scenario->apps->mobility(src_leaf);
  apps::MobilityApp& dst_mobility = scenario->apps->mobility(dst_leaf);
  apps::MobilityApp& root_mobility = scenario->apps->mobility(mp.root());

  UeId ue{7};
  (void)src_mobility.ue_attach(ue, src_bs);
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = src_bs;
  request.dst_prefix = PrefixId{3};
  auto bearer = src_mobility.request_bearer(request);
  if (!bearer.ok()) {
    std::printf("bearer failed: %s\n", bearer.error().message.c_str());
    return 1;
  }
  Packet before;
  before.ue = ue;
  before.dst_prefix = request.dst_prefix;
  auto report = scenario->net.inject_uplink(before, src_bs);
  std::printf("before handover: delivered=%d via egress %s, %.0f hops\n",
              report.outcome == dataplane::DeliveryReport::Outcome::kExternal,
              report.egress.str().c_str(), report.hops);

  // The handover (§5.2): the source leaf cannot see the target G-BS, so the
  // request climbs to the root, which orchestrates the whole procedure.
  auto handed = src_mobility.handover(ue, dst_bs);
  if (!handed.ok()) {
    std::printf("handover failed: %s\n", handed.error().message.c_str());
    return 1;
  }
  std::printf("after handover: UE record at source leaf: %s; at target leaf: %s (bs=%s)\n",
              src_mobility.ue(ue) == nullptr ? "gone" : "still there!",
              dst_mobility.ue(ue) != nullptr ? "present" : "missing!",
              dst_mobility.ue(ue) ? dst_mobility.ue(ue)->bs.str().c_str() : "-");
  std::printf("root mediated %llu inter-region handover(s); handover log edge weight "
              "(%s <-> %s) = %.0f\n",
              (unsigned long long)root_mobility.stats().inter_region_handled,
              src_group.str().c_str(), dst_group.str().c_str(),
              root_mobility.handover_log().weight(mgmt::gbs_id_for_group(src_group),
                                                  mgmt::gbs_id_for_group(dst_group)));

  // Uplink from the new base station flows over the re-implemented path.
  Packet after;
  after.ue = ue;
  after.dst_prefix = request.dst_prefix;
  report = scenario->net.inject_uplink(after, dst_bs);
  std::printf("after handover: delivered=%d via egress %s, %.0f hops, max label depth %zu\n",
              report.outcome == dataplane::DeliveryReport::Outcome::kExternal,
              report.egress.str().c_str(), report.hops, report.packet.max_depth_seen());
  return 0;
}
