// Recursive label swapping under the microscope (§4.3, Fig. 5): set up one
// root-level cross-region path, then walk a packet hop by hop and print the
// label stack at every switch — demonstrating that each physical link
// carries at most one label while three controllers made partial decisions.
//
//   $ ./label_swapping_trace
#include <cstdio>

#include "softmow/softmow.h"

using namespace softmow;

int main() {
  auto scenario = topo::build_scenario(topo::small_scenario_params(/*seed=*/8));
  auto& mp = *scenario->mgmt;
  auto& root = mp.root();

  // Pick a G-BS and an interdomain destination whose best egress is in a
  // *different* region, so the root's path crosses G-switches.
  for (GBsId gbs : root.nib().gbs_list()) {
    const southbound::GBsAnnounce* view = root.nib().gbs(gbs);
    for (PrefixId prefix : scenario->iplane->prefixes()) {
      nos::RoutingRequest req;
      req.source = Endpoint{view->attached_switch, view->attached_port};
      req.dst_prefix = prefix;
      auto route = root.compute_route(req);
      if (!route.ok() || route->hops.size() < 2) continue;  // want >= 2 G-switches

      std::printf("root path for (%s -> prefix %llu): %zu G-switch traversals, "
                  "%.0f internal hops\n",
                  gbs.str().c_str(), (unsigned long long)prefix.value, route->hops.size(),
                  route->internal.hop_count);
      for (const nos::RouteHop& hop : route->hops) {
        std::printf("  G-switch %s: in %s -> out %s\n", hop.sw.str().c_str(),
                    hop.in.str().c_str(), hop.out.str().c_str());
      }

      dataplane::Match classifier;
      classifier.ue = UeId{77};
      auto path = root.path_setup(*route, classifier);
      if (!path.ok()) continue;

      // Inject from a base station of some constituent group of this G-BS.
      BsGroupId group = view->constituent_groups.empty()
                            ? scenario->trace.groups.front()
                            : view->constituent_groups.front();
      BsId bs = scenario->net.bs_group(group)->members.front();
      Packet pkt;
      pkt.ue = UeId{77};
      pkt.dst_prefix = prefix;
      auto report = scenario->net.inject_uplink(pkt, bs);

      std::printf("\npacket walk (one row per switch entry):\n");
      std::printf("  %-8s %-6s %-6s %s\n", "switch", "in", "out", "labels on entry");
      for (const Packet::HopRecord& hop : report.packet.trace) {
        const char* kind = scenario->net.is_access_switch(hop.sw) ? "access" : "core";
        std::printf("  %-8s %-6s %-6s depth=%zu  (%s)\n", hop.sw.str().c_str(),
                    hop.in_port.str().c_str(), hop.out_port.str().c_str(),
                    hop.label_depth_on_entry, kind);
      }
      std::printf("\noutcome: %s, max label depth seen = %zu (§4.3 invariant: <= 1), "
                  "final stack size = %zu\n",
                  report.outcome == dataplane::DeliveryReport::Outcome::kExternal
                      ? "delivered to the Internet"
                      : "not delivered",
                  report.packet.max_depth_seen(), report.packet.labels.size());
      return 0;
    }
  }
  std::printf("no multi-G-switch path found in this seed\n");
  return 1;
}
