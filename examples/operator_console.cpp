// Interactive operator console: drive a live SoftMoW deployment from the
// command line — attach subscribers, open bearers, send packets, fail and
// heal links, trigger repair and region optimization, inspect the
// hierarchy.
//
//   $ ./operator_console              # runs the built-in demo script
//   $ ./operator_console -            # read commands from stdin
//
// Commands: help | stats | links | attach <ue> <bs> | bearer <ue> <prefix>
//           [min_kbps] | send <ue> <prefix> | handover <ue> <bs> |
//           fail-link <id> | heal-link <id> | repair | optimize | quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "softmow/softmow.h"

using namespace softmow;

namespace {

class Console {
 public:
  Console() : scenario_(topo::build_scenario(topo::small_scenario_params(21))) {}

  bool dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") return help();
    if (cmd == "stats") return stats();
    if (cmd == "links") return links();
    if (cmd == "attach") return attach(in);
    if (cmd == "bearer") return bearer(in);
    if (cmd == "send") return send(in);
    if (cmd == "handover") return handover(in);
    if (cmd == "fail-link") return set_link(in, false);
    if (cmd == "heal-link") return set_link(in, true);
    if (cmd == "repair") return repair();
    if (cmd == "optimize") return optimize();
    if (cmd == "audit") return audit();
    std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
    return true;
  }

 private:
  bool help() {
    std::printf(
        "commands:\n"
        "  stats                    controller hierarchy summary\n"
        "  links                    physical links (id, endpoints, state)\n"
        "  attach <ue> <bs>         attach subscriber <ue> at base station <bs>\n"
        "  bearer <ue> <prefix> [kbps]   open a bearer (optionally guaranteed-rate)\n"
        "  send <ue> <prefix>       inject an uplink packet and report its fate\n"
        "  handover <ue> <bs>       hand the UE over (intra- or inter-region)\n"
        "  fail-link <id> / heal-link <id>\n"
        "  repair                   re-route broken paths at every controller\n"
        "  optimize                 one region-optimization round at the root\n"
        "  audit                    probe every installed classifier end to end\n"
        "  quit\n");
    return true;
  }

  bool stats() {
    auto& mp = *scenario_->mgmt;
    std::printf("%zu leaves under %s; %zu base stations in %zu groups; %zu rules installed\n",
                mp.leaf_count(), mp.root().name().c_str(),
                scenario_->net.base_stations().size(), scenario_->trace.groups.size(),
                scenario_->net.total_rules());
    for (reca::Controller* c : mp.all_controllers()) {
      auto s = c->abstraction().stats();
      std::printf("  %-10s level %d: %3zu switches, %3zu links, %3zu ports exposed, "
                  "%3zu active paths\n",
                  c->name().c_str(), c->level(), s.switches, s.links, s.exposed_ports,
                  c->paths().active_count());
    }
    return true;
  }

  bool links() {
    for (LinkId id : scenario_->net.links()) {
      const dataplane::Link* l = scenario_->net.link(id);
      if (scenario_->net.is_access_switch(l->a.sw) ||
          scenario_->net.is_access_switch(l->b.sw))
        continue;
      std::printf("  %-5s %s <-> %s  %s\n", id.str().c_str(), l->a.sw.str().c_str(),
                  l->b.sw.str().c_str(), l->up ? "up" : "DOWN");
    }
    return true;
  }

  bool attach(std::istringstream& in) {
    std::uint64_t ue = 0, bs = 0;
    if (!(in >> ue >> bs)) return usage("attach <ue> <bs>");
    const auto* station = scenario_->net.base_station(BsId{bs});
    if (station == nullptr) return complain("no such base station");
    auto& mobility = scenario_->apps->mobility(*scenario_->mgmt->leaf_of_group(station->group));
    auto result = mobility.ue_attach(UeId{ue}, BsId{bs});
    std::printf(result.ok() ? "ue%llu attached at bs%llu (%s)\n" : "attach failed\n",
                (unsigned long long)ue, (unsigned long long)bs,
                scenario_->mgmt->leaf_of_group(station->group)->name().c_str());
    return true;
  }

  apps::MobilityApp* mobility_of(UeId ue) {
    for (reca::Controller* leaf : scenario_->mgmt->leaves()) {
      auto& mobility = scenario_->apps->mobility(*leaf);
      if (mobility.ue(ue) != nullptr) return &mobility;
    }
    return nullptr;
  }

  bool bearer(std::istringstream& in) {
    std::uint64_t ue = 0, prefix = 0;
    double kbps = 0;
    if (!(in >> ue >> prefix)) return usage("bearer <ue> <prefix> [kbps]");
    in >> kbps;
    apps::MobilityApp* mobility = mobility_of(UeId{ue});
    if (mobility == nullptr) return complain("UE not attached anywhere");
    apps::BearerRequest request;
    request.ue = UeId{ue};
    request.bs = mobility->ue(UeId{ue})->bs;
    request.dst_prefix = PrefixId{prefix};
    request.qos.min_bandwidth_kbps = kbps;
    auto result = mobility->request_bearer(request);
    if (!result.ok()) {
      std::printf("bearer failed: %s\n", result.error().message.c_str());
      return true;
    }
    const auto& rec = mobility->ue(UeId{ue})->bearers.at(*result);
    std::printf("bearer %s up: handled at level %d (%s)\n", result->str().c_str(),
                rec.handled_level, rec.handled_locally ? "local" : "delegated");
    return true;
  }

  bool send(std::istringstream& in) {
    std::uint64_t ue = 0, prefix = 0;
    if (!(in >> ue >> prefix)) return usage("send <ue> <prefix>");
    apps::MobilityApp* mobility = mobility_of(UeId{ue});
    if (mobility == nullptr) return complain("UE not attached anywhere");
    Packet pkt;
    pkt.ue = UeId{ue};
    pkt.dst_prefix = PrefixId{prefix};
    auto report = scenario_->net.inject_uplink(pkt, mobility->ue(UeId{ue})->bs);
    switch (report.outcome) {
      case dataplane::DeliveryReport::Outcome::kExternal:
        std::printf("delivered via %s: %.0f hops, %.1f ms, max label depth %zu\n",
                    scenario_->net.egress(report.egress)->peer_name.c_str(), report.hops,
                    report.latency.to_millis(), report.packet.max_depth_seen());
        break;
      case dataplane::DeliveryReport::Outcome::kToController:
        std::printf("punted to the controller (no matching path)\n");
        break;
      default:
        std::printf("packet lost (outcome %d)\n", static_cast<int>(report.outcome));
    }
    return true;
  }

  bool handover(std::istringstream& in) {
    std::uint64_t ue = 0, bs = 0;
    if (!(in >> ue >> bs)) return usage("handover <ue> <bs>");
    apps::MobilityApp* mobility = mobility_of(UeId{ue});
    if (mobility == nullptr) return complain("UE not attached anywhere");
    auto result = mobility->handover(UeId{ue}, BsId{bs});
    std::printf(result.ok() ? "handover complete\n" : "handover failed: %s\n",
                result.ok() ? "" : result.error().message.c_str());
    return true;
  }

  bool set_link(std::istringstream& in, bool up) {
    std::uint64_t id = 0;
    if (!(in >> id)) return usage("fail-link|heal-link <id>");
    auto result = scenario_->net.set_link_up(LinkId{id}, up);
    std::printf(result.ok() ? "link %llu is now %s\n" : "no such link\n",
                (unsigned long long)id, up ? "up" : "down");
    return true;
  }

  bool repair() {
    std::size_t repaired = 0, failed = 0;
    scenario_->mgmt->refresh_topology();
    for (reca::Controller* c : scenario_->mgmt->all_controllers()) {
      auto [r, f] = c->repair_paths();
      repaired += r;
      failed += f;
    }
    std::printf("repair: %zu paths re-routed, %zu beyond repair\n", repaired, failed);
    return true;
  }

  bool optimize() {
    auto* opt = scenario_->apps->region_opt(scenario_->mgmt->root());
    apps::RegionOptConstraints constraints;
    constraints.lb_factor = 0;
    constraints.ub_factor = 100;
    auto result = opt->optimize_round(constraints, {}, /*execute=*/true);
    if (!result.ok()) {
      std::printf("optimize failed: %s\n", result.error().message.c_str());
      return true;
    }
    std::printf("optimize: %zu moves, inter-region handover weight %.0f -> %.0f\n",
                result->moves.size(), result->initial_cross_weight,
                result->final_cross_weight);
    return true;
  }

  bool audit() {
    auto report = mgmt::audit_data_plane(scenario_->net);
    std::printf("audit: %zu classifiers probed — %zu delivered, %zu punted, %zu dropped, "
                "%zu looped, %zu errors, %zu label violations -> %s\n",
                report.classifiers_probed, report.delivered, report.punted, report.dropped,
                report.looped, report.action_errors, report.label_violations,
                report.clean() ? "CLEAN" : "FINDINGS");
    for (const auto& finding : report.findings) {
      std::printf("  finding: %s cookie %llu outcome %d depth %zu\n",
                  finding.access_switch.str().c_str(),
                  (unsigned long long)finding.cookie, static_cast<int>(finding.outcome),
                  finding.max_label_depth);
    }
    return true;
  }

  bool usage(const char* text) {
    std::printf("usage: %s\n", text);
    return true;
  }
  bool complain(const char* text) {
    std::printf("%s\n", text);
    return true;
  }

  std::unique_ptr<topo::Scenario> scenario_;
};

}  // namespace

int main(int argc, char** argv) {
  Console console;
  bool from_stdin = argc > 1 && std::string(argv[1]) == "-";

  if (!from_stdin) {
    // Scripted demo: a subscriber's day, including a link failure.
    const char* script[] = {
        "help",    "stats",        "attach 1 0",   "bearer 1 5", "send 1 5",
        "audit",   "links",        "fail-link 0",  "repair",     "send 1 5",
        "heal-link 0", "optimize", "audit",        "stats",
    };
    for (const char* line : script) {
      std::printf("\nsoftmow> %s\n", line);
      if (!console.dispatch(line)) break;
    }
    return 0;
  }

  std::string line;
  std::printf("softmow> ");
  while (std::getline(std::cin, line)) {
    if (!console.dispatch(line)) break;
    std::printf("softmow> ");
  }
  return 0;
}
