// Region optimization walkthrough (§5.3, Fig. 7): drive handovers so the
// controllers accumulate handover graphs, then let the root run the greedy
// border-G-BS reassignment and execute the reconfiguration protocol through
// the management plane — watching the inter-region handover load drop.
//
//   $ ./region_optimization
#include <cstdio>

#include "softmow/softmow.h"

using namespace softmow;

int main() {
  auto scenario = topo::build_scenario(topo::small_scenario_params(/*seed=*/3));
  auto& mp = *scenario->mgmt;
  auto& root = mp.root();

  // Replay a slice of the trace's handover pattern through the real control
  // plane: every cross-region adjacency edge gets a few real handovers.
  std::printf("driving handovers from the trace's adjacency pattern...\n");
  std::uint64_t ue_seq = 1;
  int driven = 0;
  for (const auto& [key, weight] : scenario->trace.group_adjacency.edges()) {
    auto [a, b] = key;
    int repeats = weight > 1.0 ? 3 : 1;
    for (int r = 0; r < repeats; ++r) {
      BsGroupId from = r % 2 == 0 ? a : b;
      BsGroupId to = r % 2 == 0 ? b : a;
      if (mp.leaf_of_group(from) == nullptr || mp.leaf_of_group(to) == nullptr) continue;
      apps::MobilityApp& mobility = scenario->apps->mobility(*mp.leaf_of_group(from));
      UeId ue{1000 + ue_seq++};
      if (!mobility.ue_attach(ue, scenario->net.bs_group(from)->members.front()).ok())
        continue;
      if (mobility.handover(ue, scenario->net.bs_group(to)->members.front()).ok()) ++driven;
    }
  }
  auto& root_mobility = scenario->apps->mobility(root);
  std::printf("  %d handovers driven; root mediated %llu inter-region handovers\n\n", driven,
              (unsigned long long)root_mobility.stats().inter_region_handled);

  // The root collects the subtree's handover graphs (§5.3.1) and prints its
  // view, Fig. 7b style.
  auto graph = root_mobility.collect_handover_graph();
  std::printf("root handover graph: %zu G-BS nodes, %zu edges, total weight %.0f\n",
              graph.nodes().size(), graph.edge_count(), graph.total_weight());

  // One optimization round, executed through the reconfiguration protocol.
  apps::RegionOptApp* opt = scenario->apps->region_opt(root);
  apps::RegionOptConstraints constraints;  // ±30% load envelopes (§7.4)
  std::map<GBsId, double> loads;
  for (const auto& [group, load] : scenario->trace.group_load)
    loads[mgmt::gbs_id_for_group(group)] = load;
  auto result = opt->optimize_round(constraints, loads, /*execute=*/true);
  if (!result.ok()) {
    std::printf("optimization failed: %s\n", result.error().message.c_str());
    return 1;
  }
  std::printf("\ngreedy reconfiguration (§5.3.1):\n");
  for (const apps::Move& move : result->moves) {
    std::printf("  move %s: %s -> %s (gain %.0f)\n", move.gbs.str().c_str(),
                move.from.str().c_str(), move.to.str().c_str(), move.gain);
  }
  double reduction =
      result->initial_cross_weight > 0
          ? 100.0 * (result->initial_cross_weight - result->final_cross_weight) /
                result->initial_cross_weight
          : 0.0;
  std::printf("inter-region handover weight: %.0f -> %.0f (-%.1f%%)\n",
              result->initial_cross_weight, result->final_cross_weight, reduction);

  // The control plane stays coherent after reconfiguration: a fresh bearer
  // still works end to end.
  BsGroupId group = scenario->trace.groups.front();
  BsId bs = scenario->net.bs_group(group)->members.front();
  apps::MobilityApp& mobility = scenario->apps->mobility(*mp.leaf_of_group(group));
  UeId ue{999999};
  (void)mobility.ue_attach(ue, bs);
  apps::BearerRequest request;
  request.ue = ue;
  request.bs = bs;
  request.dst_prefix = PrefixId{5};
  auto bearer = mobility.request_bearer(request);
  Packet pkt;
  pkt.ue = ue;
  pkt.dst_prefix = request.dst_prefix;
  auto report = scenario->net.inject_uplink(pkt, bs);
  std::printf("\npost-reconfiguration sanity: bearer ok=%d, packet delivered=%d\n",
              bearer.ok(),
              report.outcome == dataplane::DeliveryReport::Outcome::kExternal);
  return 0;
}
